"""The per-scenario validation/replay contract.

Every registered scenario promises two things:

1. **Replay determinism** — running it twice at the same seed on the
   same engine produces byte-identical summaries.
2. **Engine agreement** — every engine it declares produces the
   *identical* summary at equal seeds (the vectorized fleet engine's
   exactness contract, now enforced per catalog entry rather than per
   bench preset). Scenarios that declare only ``des`` carry an
   explicit ``engine_exclusion`` reason instead — validated here, so
   "we never said it worked" is impossible.

:func:`validate_scenario` checks one descriptor, :func:`validate_catalog`
sweeps the registry; both power ``repro scenarios validate`` and the
``scenario-contracts`` CI job, and the same checks run in tier-1 via
``tests/scenarios/test_contract.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.scenarios.registry import (
    ScenarioDescriptor,
    get_scenario,
    list_scenarios,
)

if TYPE_CHECKING:  # runtime sim imports stay lazy: see registry docs
    from repro.sim.scenario import ScenarioResult

__all__ = ["ContractReport", "validate_scenario", "validate_catalog"]


@dataclass(frozen=True)
class ContractReport:
    """The outcome of validating one scenario's contract.

    Attributes:
        name: the scenario validated.
        engines: engines the scenario declares.
        seeds: seeds replayed.
        comparisons: engine-summary comparisons performed (replay pairs
            plus cross-engine pairs).
        mismatches: human-readable descriptions of every divergence.
        engine_exclusion: the declared reason when ``vectorized`` is
            not contracted.
        passed: True iff no mismatches.
    """

    name: str
    engines: Tuple[str, ...]
    seeds: Tuple[int, ...]
    comparisons: int
    mismatches: Tuple[str, ...]
    engine_exclusion: Optional[str]
    passed: bool


def _summary(result: "ScenarioResult") -> Tuple[object, ...]:
    """The comparable fingerprint of a scenario run.

    ``nodes`` is excluded deliberately: the DES returns live node
    objects, the fleet engine returns ``()`` — the *summaries* are the
    contract.
    """
    return (
        result.fleet,
        result.sent_authentic,
        result.forged_bandwidth_fraction,
        result.simulated_seconds,
    )


def validate_scenario(
    descriptor: ScenarioDescriptor,
    seeds: Optional[Sequence[int]] = None,
) -> ContractReport:
    """Replay ``descriptor`` on every declared engine and compare.

    Args:
        descriptor: the scenario to validate.
        seeds: override the descriptor's canonical seeds (e.g. a single
            seed for a quick check).

    For each seed, the reference engine (``des``) runs twice — the
    replay-determinism half of the contract — and every other declared
    engine runs once and must match the reference byte-for-byte.
    """
    # Lazy import: this module is imported by `repro.scenarios` before
    # repro.sim is necessarily initialised (see registry module docs).
    from dataclasses import replace

    from repro.sim.scenario import run_scenario

    chosen = tuple(seeds) if seeds is not None else descriptor.seeds
    if not chosen:
        raise ConfigurationError("seeds must be non-empty")
    mismatches: List[str] = []
    comparisons = 0
    for seed in chosen:
        reference = _summary(
            run_scenario(replace(descriptor.config, seed=seed, engine="des"))
        )
        replay = _summary(
            run_scenario(replace(descriptor.config, seed=seed, engine="des"))
        )
        comparisons += 1
        if replay != reference:
            mismatches.append(
                f"seed {seed}: des replay diverged from itself —"
                " the scenario is not deterministic"
            )
        for engine in descriptor.engines:
            if engine == "des":
                continue
            other = _summary(
                run_scenario(
                    replace(descriptor.config, seed=seed, engine=engine)
                )
            )
            comparisons += 1
            if other != reference:
                mismatches.append(
                    f"seed {seed}: engine {engine!r} summary diverged"
                    " from the des reference"
                )
    return ContractReport(
        name=descriptor.name,
        engines=descriptor.engines,
        seeds=chosen,
        comparisons=comparisons,
        mismatches=tuple(mismatches),
        engine_exclusion=descriptor.engine_exclusion,
        passed=not mismatches,
    )


def validate_catalog(
    names: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[ContractReport]:
    """Validate every (or the named) registered scenario, name order."""
    if names:
        descriptors = [get_scenario(name) for name in names]
    else:
        descriptors = list_scenarios()
    if not descriptors:
        raise ConfigurationError("no scenarios registered to validate")
    return [
        validate_scenario(descriptor, seeds=seeds)
        for descriptor in descriptors
    ]
