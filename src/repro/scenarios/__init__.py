"""``repro.scenarios``: the scenario catalog subsystem.

Four pieces (docs/API.md has the full tour):

* :mod:`~repro.scenarios.families` — the canonical protocol-family /
  engine / workload tables every layer shares.
* :mod:`~repro.scenarios.registry` + :mod:`~repro.scenarios.catalog` —
  immutable :class:`ScenarioDescriptor` entries behind the
  :func:`register_scenario` decorator; the built-in catalog loads
  lazily on first lookup.
* :mod:`~repro.scenarios.tiers` — composable difficulty tiers T0–T3
  (attack schedule, channel shocks, defender latitude).
* :mod:`~repro.scenarios.generator` + :mod:`~repro.scenarios.contract`
  — seeded batch generation with content-addressed names, and the
  per-scenario dual-engine replay contract.

Importing this package never imports :mod:`repro.sim`: only the lazy
catalog load (and the generator/contract run paths) touch the
simulator, so the registry stays cheap and cycle-free.
"""

from repro.scenarios.contract import (
    ContractReport,
    validate_catalog,
    validate_scenario,
)
from repro.scenarios.families import (
    ALL_PROTOCOLS,
    ENGINES,
    MULTI_LEVEL,
    NET_PROTOCOLS,
    PROTOCOL_FAMILIES,
    SINGLE_LEVEL,
    TIER_NAMES,
    TWO_PHASE,
    VECTORIZED_PROTOCOLS,
    WORKLOADS,
    family_of,
    protocols_in_family,
)
from repro.scenarios.generator import (
    GeneratorSpec,
    generate_scenarios,
    generated_name,
)
from repro.scenarios.registry import (
    ScenarioDescriptor,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.scenarios.tiers import TIERS, TierSpec, tier

__all__ = [
    "ALL_PROTOCOLS",
    "ContractReport",
    "ENGINES",
    "GeneratorSpec",
    "MULTI_LEVEL",
    "NET_PROTOCOLS",
    "PROTOCOL_FAMILIES",
    "ScenarioDescriptor",
    "SINGLE_LEVEL",
    "TIER_NAMES",
    "TIERS",
    "TWO_PHASE",
    "TierSpec",
    "VECTORIZED_PROTOCOLS",
    "WORKLOADS",
    "family_of",
    "generate_scenarios",
    "generated_name",
    "get_scenario",
    "list_scenarios",
    "protocols_in_family",
    "register_scenario",
    "scenario_names",
    "tier",
    "unregister_scenario",
    "validate_catalog",
    "validate_scenario",
]
