"""The built-in scenario catalog.

Every preset that used to live as an ad-hoc ``ScenarioConfig`` literal
— the bench presets, the Fig. 5–8 operating points, the integration
smoke worlds — is a registered catalog entry here, named
``<workload>-<variant>-<tier>`` and carrying explicit seeds, engines
and provenance. ``repro scenarios list`` renders this module;
``repro scenarios validate`` replays it on every declared engine.

This module is imported lazily by
:func:`repro.scenarios.registry._ensure_catalog` (never from the
package ``__init__``), because it is the one scenarios module that
imports :mod:`repro.sim` at module scope.
"""

from __future__ import annotations

from repro.scenarios.registry import register_scenario
from repro.scenarios.tiers import tier
from repro.sim.scenario import ScenarioConfig

# --------------------------------------------------------------------
# Crowdsensing: the paper's own setting (ICDCS'16 §VI).
# --------------------------------------------------------------------


@register_scenario(
    name="smoke-t2",
    tier="T2",
    seeds=(7, 11),
    provenance="bench/CI smoke preset: the Fig. 5 point at toy size",
)
def _smoke_t2() -> ScenarioConfig:
    return tier("T2").apply(
        ScenarioConfig(protocol="dap", intervals=12, receivers=3, buffers=4)
    )


@register_scenario(
    name="fig5-t2",
    tier="T2",
    seeds=(7, 11),
    provenance="paper Fig. 5: DAP authentication rate under a 50% flood"
    " on a 10%-loss channel",
)
def _fig5_t2() -> ScenarioConfig:
    return tier("T2").apply(
        ScenarioConfig(protocol="dap", intervals=40, receivers=5, buffers=4)
    )


@register_scenario(
    name="fig5-tesla-pp-t2",
    tier="T2",
    seeds=(7, 11),
    provenance="paper Fig. 5 operating point on the TESLA++ keep-first"
    " baseline (the comparison DAP's reservoir beats)",
)
def _fig5_tesla_pp_t2() -> ScenarioConfig:
    return tier("T2").apply(
        ScenarioConfig(
            protocol="tesla_pp", intervals=40, receivers=5, buffers=4
        )
    )


@register_scenario(
    name="crowdsensing-baseline-t0",
    tier="T0",
    seeds=(7, 11),
    provenance="benign control: no flood, clean channel — the ceiling"
    " every defense is measured against",
)
def _crowdsensing_baseline_t0() -> ScenarioConfig:
    return tier("T0").apply(
        ScenarioConfig(protocol="dap", intervals=30, receivers=5, buffers=4)
    )


@register_scenario(
    name="crowdsensing-probe-t1",
    tier="T1",
    seeds=(7, 11),
    provenance="probing attacker (p=0.2): the evolutionary game's"
    " low-intensity corner",
)
def _crowdsensing_probe_t1() -> ScenarioConfig:
    return tier("T1").apply(
        ScenarioConfig(protocol="dap", intervals=30, receivers=5, buffers=4)
    )


@register_scenario(
    name="fig6-evolution-t3",
    tier="T3",
    seeds=(7,),
    provenance="paper Fig. 6 setting: replicator-dynamics trajectories"
    " at p=0.8 with a mid-sized buffer",
)
def _fig6_evolution_t3() -> ScenarioConfig:
    return tier("T3").apply(
        ScenarioConfig(protocol="dap", intervals=40, receivers=5, buffers=20)
    )


@register_scenario(
    name="fig7-optimal-t3",
    tier="T3",
    seeds=(7,),
    provenance="paper Fig. 7: Algorithm 3's optimal buffer size m* at"
    " p=0.8",
)
def _fig7_optimal_t3() -> ScenarioConfig:
    return tier("T3").apply(
        ScenarioConfig(protocol="dap", intervals=40, receivers=5, buffers=13)
    )


@register_scenario(
    name="fig8-naive-t3",
    tier="T3",
    seeds=(7,),
    provenance="paper Fig. 8: the over-provisioned naive defense (large"
    " m) the optimal policy matches at a fraction of the memory",
)
def _fig8_naive_t3() -> ScenarioConfig:
    return tier("T3").apply(
        ScenarioConfig(protocol="dap", intervals=40, receivers=5, buffers=50)
    )


@register_scenario(
    name="crowdsensing-tesla-t2",
    tier="T2",
    seeds=(7, 11),
    provenance="single-level TESLA baseline at the Fig. 5 operating"
    " point (full-width records, per-packet disclosure)",
)
def _crowdsensing_tesla_t2() -> ScenarioConfig:
    return tier("T2").apply(
        ScenarioConfig(protocol="tesla", intervals=30, receivers=5, buffers=4)
    )


@register_scenario(
    name="crowdsensing-mu-tesla-t2",
    tier="T2",
    seeds=(7, 11),
    provenance="μTESLA baseline at the Fig. 5 operating point"
    " (standalone key-disclosure packets, sensor-grade widths)",
)
def _crowdsensing_mu_tesla_t2() -> ScenarioConfig:
    return tier("T2").apply(
        ScenarioConfig(
            protocol="mu_tesla", intervals=30, receivers=5, buffers=4
        )
    )


@register_scenario(
    name="crowdsensing-multilevel-t1",
    tier="T1",
    seeds=(7, 11),
    provenance="multi-level μTESLA with CDM buffers under the probing"
    " attacker",
)
def _crowdsensing_multilevel_t1() -> ScenarioConfig:
    return tier("T1").apply(
        ScenarioConfig(
            protocol="multilevel", intervals=30, receivers=5, buffers=4
        )
    )


@register_scenario(
    name="crowdsensing-eftp-t2",
    tier="T2",
    seeds=(7, 11),
    provenance="EFTP wiring (anchor offset 0) under the sustained"
    " flood — the CDM-recovery variant's Fig. 5-grade point",
)
def _crowdsensing_eftp_t2() -> ScenarioConfig:
    return tier("T2").apply(
        ScenarioConfig(protocol="eftp", intervals=30, receivers=5, buffers=4)
    )


@register_scenario(
    name="crowdsensing-edrp-storm-t3",
    tier="T3",
    seeds=(7,),
    provenance="EDRP hash-chained CDMs in the hostile regime: p=0.8"
    " flood plus bursty fades, where the pin fast-path and commitment"
    " recovery both matter",
)
def _crowdsensing_edrp_storm_t3() -> ScenarioConfig:
    return tier("T3").apply(
        ScenarioConfig(protocol="edrp", intervals=30, receivers=5, buffers=13)
    )


# --------------------------------------------------------------------
# Vehicular safety beacons (Jin & Papadimitratos): 10 Hz position
# beacons, cooperative-verification flag set.
# --------------------------------------------------------------------


@register_scenario(
    name="vehicular-beacon-t0",
    tier="T0",
    seeds=(7, 11),
    provenance="Jin & Papadimitratos vehicular safety beacons, benign"
    " platoon (10 Hz cadence)",
)
def _vehicular_beacon_t0() -> ScenarioConfig:
    return tier("T0").apply(
        ScenarioConfig(
            protocol="dap",
            intervals=30,
            interval_duration=0.1,
            receivers=6,
            buffers=4,
            sensing_tasks=6,
            workload="vehicular-beacon",
        )
    )


@register_scenario(
    name="vehicular-beacon-t2",
    tier="T2",
    seeds=(7, 11),
    provenance="vehicular beacons under the sustained flood — the"
    " cooperative-verification paper's DoS setting",
)
def _vehicular_beacon_t2() -> ScenarioConfig:
    return tier("T2").apply(
        ScenarioConfig(
            protocol="dap",
            intervals=30,
            interval_duration=0.1,
            receivers=6,
            buffers=4,
            sensing_tasks=6,
            workload="vehicular-beacon",
        )
    )


@register_scenario(
    name="vehicular-beacon-storm-t3",
    tier="T3",
    seeds=(7,),
    provenance="vehicular beacons in the hostile regime: p=0.8 flood"
    " plus bursty fades (tunnel/shadowing shocks)",
)
def _vehicular_beacon_storm_t3() -> ScenarioConfig:
    return tier("T3").apply(
        ScenarioConfig(
            protocol="dap",
            intervals=30,
            interval_duration=0.1,
            receivers=6,
            buffers=13,
            sensing_tasks=6,
            workload="vehicular-beacon",
        )
    )


# --------------------------------------------------------------------
# UAS Remote ID broadcast (TBRD): 1 Hz TESLA-authenticated position
# reports.
# --------------------------------------------------------------------


@register_scenario(
    name="remote-id-t1",
    tier="T1",
    seeds=(7, 11),
    provenance="TBRD-style Remote ID broadcast (1 Hz) under the probing"
    " attacker",
)
def _remote_id_t1() -> ScenarioConfig:
    return tier("T1").apply(
        ScenarioConfig(
            protocol="tesla_pp",
            intervals=30,
            receivers=5,
            buffers=4,
            sensing_tasks=5,
            workload="remote-id",
        )
    )


@register_scenario(
    name="remote-id-t2",
    tier="T2",
    seeds=(7, 11),
    provenance="Remote ID broadcast at the sustained Fig. 5-grade"
    " operating point",
)
def _remote_id_t2() -> ScenarioConfig:
    return tier("T2").apply(
        ScenarioConfig(
            protocol="tesla_pp",
            intervals=30,
            receivers=5,
            buffers=4,
            sensing_tasks=5,
            workload="remote-id",
        )
    )


@register_scenario(
    name="remote-id-storm-t3",
    tier="T3",
    seeds=(7,),
    provenance="Remote ID broadcast in the hostile regime — spoofing"
    " flood at p=0.8 with urban-canyon fade bursts",
)
def _remote_id_storm_t3() -> ScenarioConfig:
    return tier("T3").apply(
        ScenarioConfig(
            protocol="tesla_pp",
            intervals=30,
            receivers=5,
            buffers=13,
            sensing_tasks=5,
            workload="remote-id",
        )
    )
