"""Canonical difficulty tiers T0-T3.

A tier is the *situation* a scenario puts the defense in: how hard the
flood presses (attack intensity and how tightly it is packed into each
interval), what the channel does (steady thinning vs Gilbert-Elliott
fade shocks), and how much latitude the defender has (a fixed ``m`` vs
Algorithm-3 re-optimisation allowed). Tiers are composable: a
:class:`TierSpec` applied to any base :class:`ScenarioConfig` yields
the same config with the tier's situational knobs swapped in, leaving
protocol, sizing and seed untouched — which is what lets one workload
preset appear in the catalog at several difficulties.

========  =======  ========  ============  ==================
tier      attack   loss      fade shocks   defender latitude
========  =======  ========  ============  ==================
T0        0.0      0.0       none          fixed m
T1        0.2      0.02      none          fixed m
T2        0.5      0.10      none          fixed m
T3        0.8      0.20      mean burst 4  re-optimisation
========  =======  ========  ============  ==================

T2 is the paper's Fig. 5 operating point; T3 is the hostile regime the
evolutionary game was built for (p = 0.8, the Fig. 6-8 setting), with
channel shocks on top. ``defender_latitude`` is advisory metadata for
the adaptive layer (:mod:`repro.sim.adaptive`, ROADMAP item 2): the
static scenario engines run whatever ``buffers`` the config carries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenarios.families import TIER_NAMES

if TYPE_CHECKING:  # no runtime repro.sim import: keeps this module a leaf
    from repro.sim.scenario import ScenarioConfig

__all__ = ["TierSpec", "TIERS", "tier"]

#: Defender-latitude vocabulary.
FIXED_M = "fixed-m"
REOPTIMIZE = "reoptimize"


@dataclass(frozen=True)
class TierSpec:
    """One difficulty tier: attack schedule, channel shocks, latitude.

    Attributes:
        name: tier name (``T0`` .. ``T3``).
        attack_fraction: the game's ``p`` — forged share of bandwidth.
        attack_burst_fraction: leading fraction of each interval the
            flood is packed into (smaller = burstier shocks).
        loss_probability: average per-delivery channel loss.
        loss_mean_burst: when set, losses arrive as Gilbert-Elliott
            fades with this mean length — the tier's channel shock.
        defender_latitude: ``"fixed-m"`` (the config's ``buffers`` is
            binding) or ``"reoptimize"`` (the adaptive layer may re-run
            Algorithm 3 and resize live).
        description: one-line situational summary.
    """

    name: str
    attack_fraction: float
    attack_burst_fraction: float
    loss_probability: float
    loss_mean_burst: Optional[float]
    defender_latitude: str
    description: str

    def apply(self, config: "ScenarioConfig") -> "ScenarioConfig":
        """``config`` with this tier's situational knobs swapped in."""
        return replace(
            config,
            attack_fraction=self.attack_fraction,
            attack_burst_fraction=self.attack_burst_fraction,
            loss_probability=self.loss_probability,
            loss_mean_burst=self.loss_mean_burst,
        )

    @property
    def allows_reoptimization(self) -> bool:
        """Whether the defender may re-run Algorithm 3 mid-scenario."""
        return self.defender_latitude == REOPTIMIZE


#: The canonical tier catalog, mildest first.
TIERS: Dict[str, TierSpec] = {
    "T0": TierSpec(
        name="T0",
        attack_fraction=0.0,
        attack_burst_fraction=0.25,
        loss_probability=0.0,
        loss_mean_burst=None,
        defender_latitude=FIXED_M,
        description="benign: no flood, clean channel",
    ),
    "T1": TierSpec(
        name="T1",
        attack_fraction=0.2,
        attack_burst_fraction=0.25,
        loss_probability=0.02,
        loss_mean_burst=None,
        defender_latitude=FIXED_M,
        description="probing: light flood (p=0.2), near-clean channel",
    ),
    "T2": TierSpec(
        name="T2",
        attack_fraction=0.5,
        attack_burst_fraction=0.25,
        loss_probability=0.1,
        loss_mean_burst=None,
        defender_latitude=FIXED_M,
        description="sustained: the paper's Fig. 5 operating point"
        " (p=0.5, 10% loss)",
    ),
    "T3": TierSpec(
        name="T3",
        attack_fraction=0.8,
        attack_burst_fraction=0.125,
        loss_probability=0.2,
        loss_mean_burst=4.0,
        defender_latitude=REOPTIMIZE,
        description="storm: the game's hostile regime (p=0.8) under"
        " bursty Gilbert-Elliott fades; Algorithm-3 re-optimisation"
        " allowed",
    ),
}

assert tuple(TIERS) == TIER_NAMES  # families.py declares the names


def tier(name: str) -> TierSpec:
    """The :class:`TierSpec` named ``name`` (raises with valid names)."""
    try:
        return TIERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown tier {name!r}; pick one of {TIER_NAMES}"
        ) from None
