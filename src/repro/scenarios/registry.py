"""The scenario registry: descriptors, registration, lookup.

This is the single source of truth for "what is a scenario". A
scenario is a named, immutable :class:`ScenarioDescriptor`: a frozen
:class:`~repro.sim.scenario.ScenarioConfig`, the workload family it
drives, its difficulty tier, the engines it is contracted to run on
(with an explicit exclusion reason when the vectorized fast path is
out), canonical seeds, and provenance notes tying catalog entries back
to the paper's figures or the related literature.

Builders register through the :func:`register_scenario` decorator::

    @register_scenario(
        name="fig5-t2",
        tier="T2",
        seeds=(7, 11),
        engines=("des", "vectorized"),
        provenance="paper Fig. 5 operating point",
    )
    def _fig5() -> ScenarioConfig:
        return tier("T2").apply(ScenarioConfig(protocol="dap", ...))

Registration is validated eagerly (name shape, tier, seeds, engine
declarations, workload/protocol consistency) so a bad catalog entry
fails at import, not at lookup. The reprolint rule RPL007 additionally
enforces — statically — that every ``register_scenario`` call spells
its ``tier=`` and ``seeds=`` explicitly.

The built-in catalog (:mod:`repro.scenarios.catalog`) is loaded
lazily on first lookup, keeping ``import repro.scenarios`` cheap and
cycle-free (this module never imports :mod:`repro.sim` at module
scope).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenarios.families import (
    ENGINES,
    TIER_NAMES,
    VECTORIZED_PROTOCOLS,
    WORKLOADS,
)

if TYPE_CHECKING:  # runtime sim imports stay lazy: see module docs
    from repro.sim.scenario import ScenarioConfig

__all__ = [
    "ScenarioDescriptor",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "unregister_scenario",
]

_NAME_RE = re.compile(r"^[a-z0-9]+(?:-[a-z0-9]+)*$")

#: name -> descriptor, in registration order.
_REGISTRY: Dict[str, "ScenarioDescriptor"] = {}

_catalog_loaded = False


@dataclass(frozen=True)
class ScenarioDescriptor:
    """One registered scenario, immutable.

    Attributes:
        name: unique kebab-case catalog name.
        family: workload family (one of
            :data:`~repro.scenarios.families.WORKLOADS`), derived from
            ``config.workload``.
        tier: difficulty tier (``T0`` .. ``T3``).
        engines: engines this scenario is contracted to run on; always
            includes ``"des"`` (the reference engine).
        seeds: canonical seeds — what ``repro scenarios validate`` and
            :func:`~repro.sim.experiments.run_registered` use.
        config: the frozen scenario configuration itself.
        provenance: where the scenario comes from (paper figure,
            related-literature workload, generator spec).
        engine_exclusion: when ``"vectorized"`` is not declared, the
            explicit reason why (required — silent non-support is not
            an option).
        generated: True for entries minted by the programmatic
            generator rather than hand-registered in the catalog.
    """

    name: str
    family: str
    tier: str
    engines: Tuple[str, ...]
    seeds: Tuple[int, ...]
    config: "ScenarioConfig"
    provenance: str = ""
    engine_exclusion: Optional[str] = None
    generated: bool = False

    def supports_engine(self, engine: str) -> bool:
        """Whether this scenario is contracted to run on ``engine``."""
        return engine in self.engines


def _validate_descriptor(descriptor: ScenarioDescriptor) -> None:
    name = descriptor.name
    if not _NAME_RE.match(name):
        raise ConfigurationError(
            f"scenario name {name!r} is not kebab-case"
            " (lowercase letters, digits, single dashes)"
        )
    if descriptor.tier not in TIER_NAMES:
        raise ConfigurationError(
            f"scenario {name!r} declares unknown tier"
            f" {descriptor.tier!r}; pick one of {TIER_NAMES}"
        )
    if not descriptor.seeds:
        raise ConfigurationError(
            f"scenario {name!r} must declare at least one explicit seed"
        )
    if len(set(descriptor.seeds)) != len(descriptor.seeds):
        raise ConfigurationError(
            f"scenario {name!r} declares duplicate seeds {descriptor.seeds}"
        )
    if not descriptor.engines:
        raise ConfigurationError(
            f"scenario {name!r} must declare at least one engine"
        )
    unknown = [e for e in descriptor.engines if e not in ENGINES]
    if unknown:
        raise ConfigurationError(
            f"scenario {name!r} declares unknown engines {unknown};"
            f" valid engines: {ENGINES}"
        )
    if "des" not in descriptor.engines:
        raise ConfigurationError(
            f"scenario {name!r} must declare the reference engine 'des'"
        )
    if descriptor.family not in WORKLOADS:
        raise ConfigurationError(
            f"scenario {name!r} has unknown workload family"
            f" {descriptor.family!r}; valid families: {WORKLOADS}"
        )
    protocol = descriptor.config.protocol
    if "vectorized" in descriptor.engines:
        if protocol not in VECTORIZED_PROTOCOLS:
            raise ConfigurationError(
                f"scenario {name!r} declares 'vectorized' but protocol"
                f" {protocol!r} is outside the fast path"
                f" {VECTORIZED_PROTOCOLS}; declare engines=('des',) with"
                " an engine_exclusion reason instead"
            )
        if descriptor.engine_exclusion:
            raise ConfigurationError(
                f"scenario {name!r} declares 'vectorized' and an"
                " engine_exclusion reason — pick one"
            )
    elif not descriptor.engine_exclusion:
        raise ConfigurationError(
            f"scenario {name!r} does not declare 'vectorized' and gives"
            " no engine_exclusion reason; every scenario runs on both"
            " engines or says why not"
        )


def _register(descriptor: ScenarioDescriptor) -> ScenarioDescriptor:
    _validate_descriptor(descriptor)
    existing = _REGISTRY.get(descriptor.name)
    if existing is not None:
        if existing == descriptor:
            return existing  # idempotent re-registration (generator reruns)
        raise ConfigurationError(
            f"scenario {descriptor.name!r} is already registered with a"
            " different definition"
        )
    _REGISTRY[descriptor.name] = descriptor
    return descriptor


def register_scenario(
    *,
    name: str,
    tier: str,
    seeds: Tuple[int, ...],
    engines: Tuple[str, ...] = ("des", "vectorized"),
    provenance: str = "",
    engine_exclusion: Optional[str] = None,
) -> Callable[[Callable[[], "ScenarioConfig"]], Callable[[], "ScenarioConfig"]]:
    """Decorator: register the decorated zero-argument config builder.

    The builder runs once, at decoration time; its
    :class:`~repro.sim.scenario.ScenarioConfig` is frozen into an
    immutable :class:`ScenarioDescriptor`. The workload family is
    derived from ``config.workload`` so descriptor and config can never
    disagree. ``tier`` and ``seeds`` are mandatory keywords — enforced
    here and, statically, by reprolint rule RPL007.
    """

    def decorate(
        builder: Callable[[], "ScenarioConfig"],
    ) -> Callable[[], "ScenarioConfig"]:
        config = builder()
        _register(
            ScenarioDescriptor(
                name=name,
                family=config.workload,
                tier=tier,
                seeds=tuple(seeds),
                engines=tuple(engines),
                config=config,
                provenance=provenance,
                engine_exclusion=engine_exclusion,
            )
        )
        return builder

    return decorate


def _ensure_catalog() -> None:
    """Load the built-in catalog exactly once, lazily."""
    global _catalog_loaded
    if _catalog_loaded:
        return
    _catalog_loaded = True  # set first: catalog import re-enters register
    import repro.scenarios.catalog  # noqa: F401  (registers on import)


def get_scenario(name: str) -> ScenarioDescriptor:
    """Look up a registered scenario (raises listing the valid names)."""
    _ensure_catalog()
    descriptor = _REGISTRY.get(name)
    if descriptor is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered scenarios:"
            f" {', '.join(scenario_names())}"
        )
    return descriptor


def list_scenarios(
    family: Optional[str] = None,
    tier: Optional[str] = None,
    engine: Optional[str] = None,
    protocol: Optional[str] = None,
) -> List[ScenarioDescriptor]:
    """Registered scenarios, name order, optionally filtered.

    Args:
        family: keep only this workload family.
        tier: keep only this difficulty tier.
        engine: keep only scenarios contracted to run on this engine.
        protocol: keep only scenarios driving this protocol.
    """
    _ensure_catalog()
    rows = sorted(_REGISTRY.values(), key=lambda d: d.name)
    if family is not None:
        rows = [d for d in rows if d.family == family]
    if tier is not None:
        rows = [d for d in rows if d.tier == tier]
    if engine is not None:
        rows = [d for d in rows if d.supports_engine(engine)]
    if protocol is not None:
        rows = [d for d in rows if d.config.protocol == protocol]
    return rows


def scenario_names() -> Tuple[str, ...]:
    """Every registered scenario name, sorted."""
    _ensure_catalog()
    return tuple(sorted(_REGISTRY))


def unregister_scenario(name: str) -> None:
    """Remove a registered scenario (tests and generator cleanup)."""
    _REGISTRY.pop(name, None)
