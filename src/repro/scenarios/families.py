"""Canonical protocol-family, engine and workload tables.

This module is the single source of truth for "which protocol belongs
to which family", "which engines exist and what they cover", and
"which workload families a scenario can drive". Every layer that used
to keep its own copy — :mod:`repro.sim.scenario`'s ``_TWO_PHASE`` /
``_SINGLE_LEVEL`` / ``_MULTI_LEVEL`` tuples, :mod:`repro.sim.fleet`'s
``SUPPORTED_PROTOCOLS``, :mod:`repro.net.harness`'s ``_NET_PROTOCOLS``,
the CLI's hand-rolled ``choices=`` tuples — now imports from here, and
the docstring table in :mod:`repro.sim.scenario` is checked against
:data:`PROTOCOL_FAMILIES` by ``tests/scenarios/test_families.py``.

Deliberately a leaf: it imports nothing from :mod:`repro.sim` or
:mod:`repro.protocols`, so both those layers (and the scenario
registry above them) can import it without cycles.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "FAMILY_TWO_PHASE",
    "FAMILY_SINGLE_LEVEL",
    "FAMILY_MULTI_LEVEL",
    "PROTOCOL_FAMILIES",
    "ALL_PROTOCOLS",
    "TWO_PHASE",
    "SINGLE_LEVEL",
    "MULTI_LEVEL",
    "ENGINES",
    "VECTORIZED_PROTOCOLS",
    "NET_PROTOCOLS",
    "WORKLOADS",
    "TIER_NAMES",
    "family_of",
    "protocols_in_family",
]

#: Protocol-family names (the rows of the paper's protocol lineage).
FAMILY_TWO_PHASE = "two-phase"
FAMILY_SINGLE_LEVEL = "single-level"
FAMILY_MULTI_LEVEL = "multi-level"

#: Protocol name -> family. Insertion order is the canonical display
#: order (the order of the table in :mod:`repro.sim.scenario`).
PROTOCOL_FAMILIES: Dict[str, str] = {
    "dap": FAMILY_TWO_PHASE,
    "tesla_pp": FAMILY_TWO_PHASE,
    "tesla": FAMILY_SINGLE_LEVEL,
    "mu_tesla": FAMILY_SINGLE_LEVEL,
    "multilevel": FAMILY_MULTI_LEVEL,
    "eftp": FAMILY_MULTI_LEVEL,
    "edrp": FAMILY_MULTI_LEVEL,
}


def protocols_in_family(family: str) -> Tuple[str, ...]:
    """Every protocol name in ``family``, in canonical order."""
    members = tuple(
        name for name, fam in PROTOCOL_FAMILIES.items() if fam == family
    )
    if not members:
        known = sorted({fam for fam in PROTOCOL_FAMILIES.values()})
        raise ConfigurationError(
            f"unknown protocol family {family!r}; pick one of {known}"
        )
    return members


def family_of(protocol: str) -> str:
    """The family of ``protocol`` (raises with the valid names)."""
    try:
        return PROTOCOL_FAMILIES[protocol]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; pick one of {ALL_PROTOCOLS}"
        ) from None


#: Every protocol name, canonical order.
ALL_PROTOCOLS: Tuple[str, ...] = tuple(PROTOCOL_FAMILIES)

TWO_PHASE: Tuple[str, ...] = protocols_in_family(FAMILY_TWO_PHASE)
SINGLE_LEVEL: Tuple[str, ...] = protocols_in_family(FAMILY_SINGLE_LEVEL)
MULTI_LEVEL: Tuple[str, ...] = protocols_in_family(FAMILY_MULTI_LEVEL)

#: Scenario engines: the discrete-event simulator, or the
#: array-structured fast path in :mod:`repro.sim.fleet`.
ENGINES: Tuple[str, ...] = ("des", "vectorized")

#: Protocols the vectorized fleet engine covers: the full catalog —
#: every family replays byte-identically to the DES at equal seeds
#: (``tests/sim/test_fleet.py`` pins the parity per family).
VECTORIZED_PROTOCOLS: Tuple[str, ...] = ALL_PROTOCOLS

#: Protocols the live testbed (:mod:`repro.net`) can drive: the wire
#: codec covers every family, the daemon builders only the two-phase.
NET_PROTOCOLS: Tuple[str, ...] = TWO_PHASE

#: Workload families a :class:`~repro.sim.scenario.ScenarioConfig` can
#: name: the paper's crowdsensing campaign, DoS-resilient vehicular
#: safety beacons with cooperative neighbor verification (Jin &
#: Papadimitratos), and TESLA-authenticated UAS Remote ID broadcast
#: (TBRD). Builders live in :mod:`repro.sim.workloads`.
WORKLOADS: Tuple[str, ...] = ("crowdsensing", "vehicular-beacon", "remote-id")

#: Canonical difficulty tiers, mildest first. The specs live in
#: :mod:`repro.scenarios.tiers`; the names are declared here so leaf
#: consumers can validate without importing the tier machinery.
TIER_NAMES: Tuple[str, ...] = ("T0", "T1", "T2", "T3")
