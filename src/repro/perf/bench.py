"""The JSON bench runner behind ``repro bench`` and CI's perf-smoke step.

Benchmarks here are *comparative*: each section measures the naive
reference path and the kernel path on the same workload in the same
process, so the JSON it writes (``BENCH_crypto.json`` at the repo root)
carries defensible speedup ratios rather than machine-dependent
absolute numbers. Absolute ops/sec are reported too — they anchor the
ratios — but the checked-in artifact's claim is the ratio column.

Sections:

``one_way``
    Single one-way-function applications, midstate vs naive.
``keychain_walks``
    The paper's DoS shape: a receiver back-walking repeated disclosures
    across a gap. Naive = kernels off, no memo; kernel = midstate +
    :class:`~repro.crypto.kernels.ChainWalkCache`. This is the ratio the
    acceptance bar (>= 2x) applies to.
``mac_verify``
    Batched :meth:`~repro.crypto.mac.MacScheme.verify_many` vs per-pair
    :meth:`~repro.crypto.mac.MacScheme.verify`.
``mac_batch``
    Sender-side MAC batching:
    :meth:`~repro.crypto.mac.MacScheme.compute_many` (one HMAC key
    block per batch) vs per-message
    :meth:`~repro.crypto.mac.MacScheme.compute`.
``umac_reservoir``
    Algorithm 2 under a flood:
    :meth:`~repro.buffers.reservoir.ReservoirBuffer.offer_many` vs
    per-copy :meth:`~repro.buffers.reservoir.ReservoirBuffer.offer`,
    end state asserted identical (same RNG stream) in the same run.
``fast_umac``
    μMAC tagging three ways: scalar HMAC
    :meth:`~repro.crypto.mac.MicroMacScheme.compute`, batched
    :meth:`~repro.crypto.mac.MicroMacScheme.compute_many`, and
    ``compute_many`` under the opt-in non-faithful keyed-BLAKE2s
    kernel (:func:`repro.crypto.kernels.fast_umac` — different bytes,
    same distributional collision model; see EXPERIMENTS.md before
    using it for figures).
``pebbled``
    Sequential sender traversal cost plus the memory story (stored and
    peak pebbles vs the dense chain's ``n`` keys).
``scenario``
    The end-to-end fig5 run, three ways on one config and seed: the
    naive stack (event-driven DES, kernels off), the fleet engine on
    its scalar reference replay (kernels off), and the kernel stack
    (fleet engine's vectorized reservoir kernel + batched crypto,
    kernels on) — all three summaries asserted byte-identical in the
    same run, with the counter deltas that prove the kernel run
    exercised the crypto hot path. ``speedup`` is naive stack vs
    kernel stack; ``replay_speedup`` isolates the vectorized replay
    (fleet kernels off vs on). The preset's ``scenario_receivers``
    scales the catalog config's fleet so the walls are measurable.

A second suite, :func:`run_sim_bench` (``repro bench --suite sim``,
``BENCH_sim.json``), measures the vectorized fleet engine
(:mod:`repro.sim.fleet`) against the event-driven simulator on
fig5-style fleets — every catalog protocol family — and asserts the
two produced identical summaries; the artifact's speedup claim is only
meaningful because equality is checked in the same run. Passing
``receivers`` (CLI ``--receivers``) adds a receivers-scaling axis:
per-count sharded fleet runs with wall time and peak RSS
(``resource.getrusage`` high-water, KB), DES-compared up to
:data:`DES_PARITY_MAX_RECEIVERS` and fleet-only beyond it, which is
how the checked-in 10^6-receiver fig5 entry is produced.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import random
import resource
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence

from repro.buffers.reservoir import ReservoirBuffer
from repro.crypto.kernels import ChainWalkCache, fast_umac, set_kernels_enabled
from repro.crypto.keychain import KeyChain, KeyChainAuthenticator
from repro.crypto.mac import MICRO_MAC_BITS, MacScheme, MicroMacScheme
from repro.crypto.onewayfn import OneWayFunction
from repro.crypto.pebbled import PebbledKeyChain, pebble_bound
from repro.errors import ConfigurationError, ReproError
from repro.perf import collecting
from repro.scenarios import get_scenario
from repro.sim.scenario import ScenarioConfig, run_scenario

__all__ = [
    "BENCH_PRESETS",
    "DES_PARITY_MAX_RECEIVERS",
    "SCENARIO_PRESETS",
    "SIM_BENCH_PRESETS",
    "run_bench",
    "run_sim_bench",
    "write_bench_json",
]

#: Scenario presets shared by ``repro bench`` and ``repro profile``.
#: Both are registered catalog entries now (``repro scenarios describe
#: fig5-t2``); the bench keeps its historical short names as aliases.
SCENARIO_PRESETS: Dict[str, ScenarioConfig] = {
    "fig5": get_scenario("fig5-t2").config,
    "smoke": get_scenario("smoke-t2").config,
}

#: Bench sizing presets: (one-way ops, walk gap, walk repeats, MAC batch,
#: μMAC flood sizes, pebbled chain length, scenario preset + fleet size).
#: Both presets point ``scenario`` at fig5 so even the CI smoke artifact
#: carries the fig5 end-to-end speedup the acceptance bar applies to.
BENCH_PRESETS: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "oneway_ops": 2000,
        "walk_gap": 64,
        "walk_repeats": 200,
        "mac_batch": 64,
        "mac_rounds": 20,
        "umac_flood": 2048,
        "reservoir_capacity": 4,
        "pebbled_length": 4096,
        "scenario": "fig5",
        "scenario_receivers": 50,
    },
    "full": {
        "oneway_ops": 20000,
        "walk_gap": 64,
        "walk_repeats": 2000,
        "mac_batch": 64,
        "mac_rounds": 200,
        "umac_flood": 8192,
        "reservoir_capacity": 4,
        "pebbled_length": 65536,
        "scenario": "fig5",
        "scenario_receivers": 100,
    },
}


#: Sim-suite presets: the fig5-t2 catalog entry scaled up to
#: crowd-sized fleets, one section per catalog protocol family member
#: (the fast path is catalog-complete).
_FIG5 = get_scenario("fig5-t2").config
_SIM_PROTOCOLS = (
    "dap", "tesla_pp", "tesla", "mu_tesla", "multilevel", "eftp", "edrp",
)
SIM_BENCH_PRESETS: Dict[str, Dict[str, ScenarioConfig]] = {
    "smoke": {
        f"fleet_{protocol}": dataclasses.replace(
            _FIG5, protocol=protocol, intervals=20, receivers=50
        )
        for protocol in _SIM_PROTOCOLS
    },
    "full": {
        f"fleet_{protocol}": dataclasses.replace(
            _FIG5, protocol=protocol, receivers=100
        )
        for protocol in _SIM_PROTOCOLS
    },
}

#: Largest receiver count the scaling axis still DES-references. Above
#: this the event-driven run would dominate the suite by hours, so the
#: entries are fleet-only (parity at these sizes is pinned per shard
#: count by the invariance tests instead).
DES_PARITY_MAX_RECEIVERS = 10_000

#: Receiver-axis shard span for scaling runs: keeps the per-shard
#: unpacked delivery slice (slots x span booleans) bounded regardless
#: of fleet size.
_SCALING_SHARD_SPAN = 62_500


def _best_rate(fn: Callable[[], int], repeat: int) -> float:
    """Best-of-``repeat`` throughput of ``fn`` in ops/sec.

    ``fn`` returns the number of operations it performed. Best-of
    timing (rather than mean) is the standard defence against scheduler
    noise on shared CI runners.
    """
    best = 0.0
    for _ in range(repeat):
        started = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, ops / elapsed)
    return best


def _bench_one_way(preset: Dict[str, Any], repeat: int) -> Dict[str, Any]:
    function = OneWayFunction("F")
    payload = b"\x5a" * function.output_bytes
    ops = int(preset["oneway_ops"])

    def burst() -> int:
        value = payload
        for _ in range(ops):
            value = function(value)
        return ops

    set_kernels_enabled(False)
    naive = _best_rate(burst, repeat)
    set_kernels_enabled(True)
    midstate = _best_rate(burst, repeat)
    return {
        "ops": ops,
        "naive_ops_per_sec": round(naive, 1),
        "kernel_ops_per_sec": round(midstate, 1),
        "speedup": round(midstate / naive, 3) if naive else 0.0,
    }


def _bench_keychain_walks(preset: Dict[str, Any], repeat: int) -> Dict[str, Any]:
    """The flooding-receiver shape: the same disclosure verified over and
    over across a ``gap``-step back-walk (duplicate floods, re-disclosures,
    retransmissions). One walk per repetition naive; one walk total cached.
    """
    gap = int(preset["walk_gap"])
    repeats = int(preset["walk_repeats"])
    function = OneWayFunction("F")
    chain = KeyChain(b"bench-seed", gap + 1, function)
    # A forged disclosure never advances the trusted anchor, so a
    # duplicate flood makes the naive receiver repeat the full O(gap)
    # back-walk per copy — the exact CPU-DoS shape the walk cache kills.
    forged = bytes(b ^ 0xA5 for b in chain.key(gap))

    def naive_burst() -> int:
        authenticator = KeyChainAuthenticator(chain.commitment, function)
        for _ in range(repeats):
            authenticator.authenticate(forged, gap)
        return repeats

    def cached_burst() -> int:
        authenticator = KeyChainAuthenticator(
            chain.commitment, function, walk_cache=ChainWalkCache(function)
        )
        for _ in range(repeats):
            authenticator.authenticate(forged, gap)
        return repeats

    set_kernels_enabled(False)
    naive = _best_rate(naive_burst, repeat)
    set_kernels_enabled(True)
    cached = _best_rate(cached_burst, repeat)
    return {
        "gap": gap,
        "repeats": repeats,
        "naive_ops_per_sec": round(naive, 1),
        "kernel_ops_per_sec": round(cached, 1),
        "speedup": round(cached / naive, 3) if naive else 0.0,
    }


def _bench_mac_verify(preset: Dict[str, Any], repeat: int) -> Dict[str, Any]:
    scheme = MacScheme()
    key = b"\x42" * 10
    batch = int(preset["mac_batch"])
    rounds = int(preset["mac_rounds"])
    messages = [b"message-%06d" % i for i in range(batch)]
    pairs = list(zip(messages, scheme.compute_many(key, messages)))

    def per_pair() -> int:
        for _ in range(rounds):
            for message, mac in pairs:
                # reprolint: disable=RPL009 -- the naive column of the bench: the scalar path is what is being timed
                scheme.verify(key, message, mac)
        return rounds * batch

    def batched() -> int:
        for _ in range(rounds):
            scheme.verify_many(key, pairs)
        return rounds * batch

    set_kernels_enabled(False)
    naive = _best_rate(per_pair, repeat)
    set_kernels_enabled(True)
    many = _best_rate(batched, repeat)
    return {
        "batch": batch,
        "naive_ops_per_sec": round(naive, 1),
        "kernel_ops_per_sec": round(many, 1),
        "speedup": round(many / naive, 3) if naive else 0.0,
    }


def _bench_mac_batch(preset: Dict[str, Any], repeat: int) -> Dict[str, Any]:
    """Sender-side shape: MAC a whole broadcast slot under one key.

    Unlike :func:`_bench_mac_verify` (kernels off vs on), both sides
    here run with the kernels on — the section isolates what the batch
    API itself buys over per-call :meth:`MacScheme.compute`, i.e. one
    midstate lookup per *batch* instead of per digest.
    """
    scheme = MacScheme()
    key = b"\x42" * 10
    batch = int(preset["mac_batch"])
    rounds = int(preset["mac_rounds"])
    messages = [b"message-%06d" % i for i in range(batch)]

    def scalar() -> int:
        for _ in range(rounds):
            for message in messages:
                # reprolint: disable=RPL009 -- the scalar column of the bench: per-call compute is what is being timed
                scheme.compute(key, message)
        return rounds * batch

    def batched() -> int:
        for _ in range(rounds):
            scheme.compute_many(key, messages)
        return rounds * batch

    set_kernels_enabled(True)
    scalar_rate = _best_rate(scalar, repeat)
    many_rate = _best_rate(batched, repeat)
    return {
        "batch": batch,
        "scalar_ops_per_sec": round(scalar_rate, 1),
        "batched_ops_per_sec": round(many_rate, 1),
        "speedup": round(many_rate / scalar_rate, 3) if scalar_rate else 0.0,
    }


def _bench_umac_reservoir(preset: Dict[str, Any], repeat: int) -> Dict[str, Any]:
    """Algorithm-2 flood absorption: per-copy ``offer`` vs ``offer_many``.

    Before timing, one seeded pair of buffers is run both ways and the
    survivors, offer counters and final RNG states are compared — the
    artifact's ``identical_survivors`` is a checked fact for the exact
    flood being timed, not an assumption.
    """
    flood = int(preset["umac_flood"])
    capacity = int(preset["reservoir_capacity"])
    items = list(range(flood))

    sequential_buf: ReservoirBuffer[int] = ReservoirBuffer(
        capacity, rng=random.Random(0xA2)
    )
    for item in items:
        sequential_buf.offer(item)
    batched_buf: ReservoirBuffer[int] = ReservoirBuffer(
        capacity, rng=random.Random(0xA2)
    )
    batched_buf.offer_many(items)
    if (
        sequential_buf.items != batched_buf.items
        or sequential_buf.seen_count != batched_buf.seen_count
    ):
        raise ReproError(
            "ReservoirBuffer.offer_many diverged from sequential offers —"
            " the batched path no longer replays Algorithm 2 draw-for-draw"
        )

    def per_copy() -> int:
        buf: ReservoirBuffer[int] = ReservoirBuffer(
            capacity, rng=random.Random(0x5EED)
        )
        for item in items:
            buf.offer(item)
        return flood

    def batched() -> int:
        buf: ReservoirBuffer[int] = ReservoirBuffer(
            capacity, rng=random.Random(0x5EED)
        )
        buf.offer_many(items)
        return flood

    scalar_rate = _best_rate(per_copy, repeat)
    many_rate = _best_rate(batched, repeat)
    return {
        "flood": flood,
        "capacity": capacity,
        "scalar_ops_per_sec": round(scalar_rate, 1),
        "batched_ops_per_sec": round(many_rate, 1),
        "speedup": round(many_rate / scalar_rate, 3) if scalar_rate else 0.0,
        "identical_survivors": True,
    }


def _bench_fast_umac(preset: Dict[str, Any], repeat: int) -> Dict[str, Any]:
    """μMAC tag generation three ways: scalar HMAC, batched HMAC, and the
    opt-in keyed-BLAKE2s fast path (``kernels.FAST_UMAC``).

    ``faithful_bytes`` is false for the fast column by design — the fast
    tags differ from the HMAC reference byte-for-byte while keeping the
    same 2^-bits distributional collision model, so figures produced
    under it are statistically, not bitwise, equivalent.
    """
    micro = MicroMacScheme()
    key = b"\x24" * 16
    flood = int(preset["umac_flood"])
    macs = [b"mac-%06d" % i for i in range(flood)]

    def scalar() -> int:
        for mac in macs:
            # reprolint: disable=RPL009 -- the scalar column of the bench: per-call compute is what is being timed
            micro.compute(key, mac)
        return flood

    def batched() -> int:
        micro.compute_many(key, macs)
        return flood

    set_kernels_enabled(True)
    hmac_scalar = _best_rate(scalar, repeat)
    hmac_batched = _best_rate(batched, repeat)
    with fast_umac(True):
        fast_rate = _best_rate(batched, repeat)
    return {
        "flood": flood,
        "bits": MICRO_MAC_BITS,
        "hmac_scalar_ops_per_sec": round(hmac_scalar, 1),
        "hmac_batched_ops_per_sec": round(hmac_batched, 1),
        "fast_ops_per_sec": round(fast_rate, 1),
        "batched_speedup": (
            round(hmac_batched / hmac_scalar, 3) if hmac_scalar else 0.0
        ),
        "fast_speedup": round(fast_rate / hmac_scalar, 3) if hmac_scalar else 0.0,
        "faithful_bytes": False,
    }


def _bench_pebbled(preset: Dict[str, Any], repeat: int) -> Dict[str, Any]:
    length = int(preset["pebbled_length"])
    function = OneWayFunction("F")
    chain = PebbledKeyChain(b"bench-seed", length, function)

    def traverse() -> int:
        for index in range(1, length + 1):
            chain.key(index)
        return length

    rate = _best_rate(traverse, max(1, repeat // 2))
    return {
        "length": length,
        "traversal_keys_per_sec": round(rate, 1),
        "stored_keys": chain.stored_keys,
        "peak_stored_keys": chain.peak_stored_keys,
        "peak_bound": pebble_bound(length),
        "dense_stored_keys": length + 1,
    }


def _bench_scenario(preset: Dict[str, Any]) -> Dict[str, Any]:
    """End-to-end fig5 three ways on one config and seed.

    1. event-driven engine, kernels off — the naive stack;
    2. fleet engine, kernels off — the scalar reference replay;
    3. fleet engine, kernels on — the kernel stack (batched MACs,
       midstates, one-pass numpy reservoir replay).

    All three summaries must be byte-identical (a single divergence
    fails the bench), so the headline ``speedup`` — naive stack over
    kernel stack — compares two runs *proven in this very invocation*
    to compute the same answer. ``replay_speedup`` isolates the
    vectorized replay against the scalar fleet reference.
    """
    base = SCENARIO_PRESETS[str(preset["scenario"])]
    receivers = int(preset.get("scenario_receivers", base.receivers))
    des_config = dataclasses.replace(base, receivers=receivers, engine="des")
    fleet_config = dataclasses.replace(des_config, engine="vectorized")

    set_kernels_enabled(False)
    started = time.perf_counter()
    des_result = run_scenario(des_config)
    naive_wall = time.perf_counter() - started

    started = time.perf_counter()
    reference_result = run_scenario(fleet_config)
    reference_wall = time.perf_counter() - started

    set_kernels_enabled(True)
    with collecting() as kernel_registry:
        started = time.perf_counter()
        kernel_result = run_scenario(fleet_config)
        kernel_wall = time.perf_counter() - started

    if (
        des_result.fleet != kernel_result.fleet
        or reference_result.fleet != kernel_result.fleet
    ):
        raise ReproError(
            "scenario engines diverged — the kernel stack is not"
            " byte-identical to the naive event-driven reference"
        )
    return {
        "preset": str(preset["scenario"]),
        "receivers": receivers,
        "naive_wall_seconds": round(naive_wall, 4),
        "reference_wall_seconds": round(reference_wall, 4),
        "kernel_wall_seconds": round(kernel_wall, 4),
        "speedup": round(naive_wall / kernel_wall, 3) if kernel_wall else 0.0,
        "replay_speedup": (
            round(reference_wall / kernel_wall, 3) if kernel_wall else 0.0
        ),
        "identical_summaries": True,
        "counters": dict(kernel_registry.counters),
        "walk_cache_hit_rate": round(
            kernel_registry.hit_rate(
                "crypto.walk_cache.hits", "crypto.walk_cache.misses"
            ),
            4,
        ),
    }


def run_bench(preset: str = "smoke", repeat: int = 3) -> Dict[str, Any]:
    """Run every bench section and return the JSON-ready document.

    Raises:
        ConfigurationError: for unknown presets or non-positive repeat.
        ReproError: if the instrumented scenario reports zero hash
            invocations (the CI tripwire: it means the counters came
            unwired from the hot path) or if kernel on/off runs diverge.
    """
    if preset not in BENCH_PRESETS:
        raise ConfigurationError(
            f"unknown bench preset {preset!r}; choose from {sorted(BENCH_PRESETS)}"
        )
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
    sizes = BENCH_PRESETS[preset]
    previous = set_kernels_enabled(True)
    try:
        results = {
            "one_way": _bench_one_way(sizes, repeat),
            "keychain_walks": _bench_keychain_walks(sizes, repeat),
            "mac_verify": _bench_mac_verify(sizes, repeat),
            "mac_batch": _bench_mac_batch(sizes, repeat),
            "umac_reservoir": _bench_umac_reservoir(sizes, repeat),
            "fast_umac": _bench_fast_umac(sizes, repeat),
            "pebbled": _bench_pebbled(sizes, repeat),
            "scenario": _bench_scenario(sizes),
        }
    finally:
        set_kernels_enabled(previous)
    counters = results["scenario"]["counters"]
    hashes = counters.get("crypto.hash", 0)
    macs = counters.get("crypto.mac", 0)
    batches = counters.get("crypto.mac.batches", 0)
    if hashes == 0 or macs == 0 or batches == 0:
        raise ReproError(
            "instrumented scenario reported zero hash/MAC/batch invocations"
            " — perf counters are unwired from the crypto hot path"
        )
    return {
        "preset": preset,
        "repeat": repeat,
        "python": platform.python_version(),
        "results": results,
    }


def _bench_fleet(config: ScenarioConfig, repeat: int) -> Dict[str, Any]:
    """One sim-suite section: DES vs vectorized on the same config.

    Both engines run ``repeat`` times (best-of walls) and every
    vectorized result is compared against the DES reference — a single
    divergence fails the bench, so ``identical_summaries`` in the
    artifact is a checked fact, not an assumption.
    """
    des_config = dataclasses.replace(config, engine="des")
    vec_config = dataclasses.replace(config, engine="vectorized")

    des_wall = float("inf")
    vec_wall = float("inf")
    des_result = vec_result = None
    for _ in range(repeat):
        started = time.perf_counter()
        des_result = run_scenario(des_config)
        des_wall = min(des_wall, time.perf_counter() - started)
        started = time.perf_counter()
        vec_result = run_scenario(vec_config)
        vec_wall = min(vec_wall, time.perf_counter() - started)
        if (
            des_result.fleet != vec_result.fleet
            or des_result.sent_authentic != vec_result.sent_authentic
            or des_result.forged_bandwidth_fraction
            != vec_result.forged_bandwidth_fraction
            or des_result.simulated_seconds != vec_result.simulated_seconds
        ):
            raise ReproError(
                "vectorized fleet engine diverged from the DES on"
                f" {config.protocol}: the engines are not bit-identical"
            )
    return {
        "protocol": config.protocol,
        "receivers": config.receivers,
        "intervals": config.intervals,
        "attack_fraction": config.attack_fraction,
        "loss_probability": config.loss_probability,
        "des_wall_seconds": round(des_wall, 4),
        "vectorized_wall_seconds": round(vec_wall, 4),
        "speedup": round(des_wall / vec_wall, 3) if vec_wall else 0.0,
        "identical_summaries": True,
    }


def _peak_rss_kb() -> int:
    """The process peak-RSS high-water mark in KB (Linux ``ru_maxrss``)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _bench_receivers_scaling(
    receivers: Sequence[int], repeat: int
) -> Dict[str, Any]:
    """The receivers-scaling axis: fig5-style fleets at growing sizes.

    Each count runs the vectorized engine sharded (spans of
    :data:`_SCALING_SHARD_SPAN` receivers) with streaming aggregate
    reduction, recording wall time and the process peak RSS after the
    run. Counts up to :data:`DES_PARITY_MAX_RECEIVERS` also run the DES
    once and check summary parity, so the recorded speedups stay
    checked facts; larger counts are fleet-only.

    ``ru_maxrss`` is a process-lifetime high-water mark, so per-entry
    values are monotone within one suite invocation — the flat-memory
    claim is that the mark barely moves as counts grow 100x, which is
    exactly what the streaming reduction buys.
    """
    from repro.sim.fleet import run_fleet_scenario
    from repro.sim.metrics import FleetAggregate

    entries = []
    for count in receivers:
        if count < 1:
            raise ConfigurationError(f"receivers must be >= 1, got {count}")
        config = dataclasses.replace(
            _FIG5, receivers=count, engine="vectorized"
        )
        shards = max(1, -(-count // _SCALING_SHARD_SPAN))
        vec_wall = float("inf")
        vec_result = None
        runs = repeat if count <= DES_PARITY_MAX_RECEIVERS else 1
        for _ in range(runs):
            started = time.perf_counter()
            vec_result = run_fleet_scenario(
                config, shards=shards, summary="aggregate"
            )
            vec_wall = min(vec_wall, time.perf_counter() - started)
        assert vec_result is not None
        entry: Dict[str, Any] = {
            "protocol": config.protocol,
            "receivers": count,
            "intervals": config.intervals,
            "shards": shards,
            "vectorized_wall_seconds": round(vec_wall, 4),
            "peak_rss_kb": _peak_rss_kb(),
            "mean_authentication_rate": round(
                vec_result.fleet.mean_authentication_rate, 6
            ),
        }
        if count <= DES_PARITY_MAX_RECEIVERS:
            started = time.perf_counter()
            des_result = run_scenario(
                dataclasses.replace(config, engine="des")
            )
            des_wall = time.perf_counter() - started
            if (
                FleetAggregate.from_summary(des_result.fleet)
                != vec_result.fleet
            ):
                raise ReproError(
                    "vectorized fleet engine diverged from the DES at"
                    f" {count} receivers: the engines are not bit-identical"
                )
            entry["des_wall_seconds"] = round(des_wall, 4)
            entry["speedup"] = (
                round(des_wall / vec_wall, 3) if vec_wall else 0.0
            )
            entry["identical_summaries"] = True
        entries.append(entry)
    return {"config": "fig5-t2", "entries": entries}


def run_sim_bench(
    preset: str = "smoke",
    repeat: int = 3,
    receivers: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    """Run the sim suite: vectorized fleet engine vs the DES.

    Args:
        preset: per-protocol comparison sizing (``smoke``/``full``).
        repeat: best-of repetitions per timed run.
        receivers: optional receiver counts for the scaling axis (e.g.
            ``[100, 10_000, 1_000_000]``); adds a ``receivers_scaling``
            section with per-count wall time and peak RSS.

    Raises:
        ConfigurationError: for unknown presets, non-positive repeat,
            or non-positive receiver counts.
        ReproError: if any vectorized run diverges from its DES
            reference (the parity tripwire).
    """
    if preset not in SIM_BENCH_PRESETS:
        raise ConfigurationError(
            f"unknown bench preset {preset!r};"
            f" choose from {sorted(SIM_BENCH_PRESETS)}"
        )
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
    results = {
        name: _bench_fleet(config, repeat)
        for name, config in sorted(SIM_BENCH_PRESETS[preset].items())
    }
    document: Dict[str, Any] = {
        "suite": "sim",
        "preset": preset,
        "repeat": repeat,
        "python": platform.python_version(),
        "results": results,
    }
    if receivers:
        document["receivers_scaling"] = _bench_receivers_scaling(
            receivers, repeat
        )
    return document


def write_bench_json(path: Path, document: Dict[str, Any]) -> None:
    """Write the bench document as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
