"""Counter/timer registry backing the instrumentation layer.

A :class:`PerfRegistry` is a plain bag of named counters, value
observations and accumulated timers. It has no opinions about *what*
gets counted — the hot paths (crypto kernels, the simulator loop, the
broadcast medium, the net harness) pick their own names, documented in
``docs/API.md``. Registries are cheap to create and are normally used
through :func:`repro.perf.collecting`, which installs one as the
process-wide active registry for the duration of a block.

Hot paths guard every update with ``if perf.ACTIVE is not None`` so a
disabled registry costs one global load per call site and nothing else
(see ``benchmarks/bench_perf_overhead.py`` for the guard bench) —
adding the internal lock below did not touch that invariant, because
the disabled path never reaches a registry method at all.

Updates, :meth:`~PerfRegistry.snapshot` and
:meth:`~PerfRegistry.reset` are serialised by one internal lock: the
cluster's periodic metrics exporter (:mod:`repro.cluster.worker`)
snapshots a registry from a heartbeat thread while soak threads keep
producing, and ``counter = counter + amount`` is not atomic across
threads without it. Single-threaded measurement pays one uncontended
lock acquisition per update — noise next to the hashing it measures.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator

from repro.devtools.sanitizers.locks import tracked_lock

__all__ = ["Observation", "PerfRegistry"]


class Observation:
    """Running summary of an observed value stream (count/total/min/max)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def update(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Sample mean (0.0 before the first sample)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready summary."""
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Observation(count={self.count}, mean={self.mean:.4g})"


class PerfRegistry:
    """Named counters, observations and timers for one measurement run.

    All methods are cheap dictionary updates under one internal lock,
    so concurrent producer threads never lose increments and
    :meth:`snapshot`/:meth:`reset` always see a consistent cut — the
    contract the cluster's periodic exporter depends on
    (``tests/perf/test_registry.py`` pins it with hammering threads).
    """

    __slots__ = ("counters", "observations", "timers", "_lock")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.observations: Dict[str, Observation] = {}
        self.timers: Dict[str, float] = {}
        self._lock = tracked_lock("perf.registry")

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into observation stream ``name``."""
        with self._lock:
            stat = self.observations.get(name)
            if stat is None:
                stat = self.observations[name] = Observation()
            stat.update(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the block into timer ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def hit_rate(self, hits: str, misses: str) -> float:
        """``hits / (hits + misses)`` over two counters (0.0 when idle)."""
        h = self.counters.get(hits, 0)
        total = h + self.counters.get(misses, 0)
        return h / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready copy of everything recorded so far.

        Taken under the registry lock, so a snapshot is a consistent
        cut even while producer threads keep recording: no counter ever
        appears half-updated and no observation summary mixes samples
        from before and after the cut.
        """
        with self._lock:
            return {
                "counters": dict(self.counters),
                "observations": {
                    name: stat.to_dict()
                    for name, stat in self.observations.items()
                },
                "timers": dict(self.timers),
            }

    def reset(self) -> Dict[str, Any]:
        """Atomically snapshot everything recorded so far, then clear.

        The swap happens under the registry lock, so every increment
        lands in exactly one reset window — the delta-export discipline
        the cluster's periodic metrics exporter uses (sum of exported
        deltas equals the true total, no sample counted twice or
        dropped). Returns the pre-reset snapshot.
        """
        with self._lock:
            cut = {
                "counters": dict(self.counters),
                "observations": {
                    name: stat.to_dict()
                    for name, stat in self.observations.items()
                },
                "timers": dict(self.timers),
            }
            self.counters.clear()
            self.observations.clear()
            self.timers.clear()
        return cut

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PerfRegistry(counters={len(self.counters)},"
            f" observations={len(self.observations)}, timers={len(self.timers)})"
        )
