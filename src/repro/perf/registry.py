"""Counter/timer registry backing the instrumentation layer.

A :class:`PerfRegistry` is a plain bag of named counters, value
observations and accumulated timers. It has no opinions about *what*
gets counted — the hot paths (crypto kernels, the simulator loop, the
broadcast medium, the net harness) pick their own names, documented in
``docs/API.md``. Registries are cheap to create and are normally used
through :func:`repro.perf.collecting`, which installs one as the
process-wide active registry for the duration of a block.

Hot paths guard every update with ``if perf.ACTIVE is not None`` so a
disabled registry costs one global load per call site and nothing else
(see ``benchmarks/bench_perf_overhead.py`` for the guard bench).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator

__all__ = ["Observation", "PerfRegistry"]


class Observation:
    """Running summary of an observed value stream (count/total/min/max)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def update(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Sample mean (0.0 before the first sample)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready summary."""
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Observation(count={self.count}, mean={self.mean:.4g})"


class PerfRegistry:
    """Named counters, observations and timers for one measurement run.

    All methods are cheap dictionary updates; the registry is intended
    for single-threaded measurement (the simulator, the loopback soak
    and the asyncio UDP world all run their hot loops on one thread).
    """

    __slots__ = ("counters", "observations", "timers")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.observations: Dict[str, Observation] = {}
        self.timers: Dict[str, float] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into observation stream ``name``."""
        stat = self.observations.get(name)
        if stat is None:
            stat = self.observations[name] = Observation()
        stat.update(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the block into timer ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def hit_rate(self, hits: str, misses: str) -> float:
        """``hits / (hits + misses)`` over two counters (0.0 when idle)."""
        h = self.counters.get(hits, 0)
        total = h + self.counters.get(misses, 0)
        return h / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "observations": {
                name: stat.to_dict() for name, stat in self.observations.items()
            },
            "timers": dict(self.timers),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PerfRegistry(counters={len(self.counters)},"
            f" observations={len(self.observations)}, timers={len(self.timers)})"
        )
