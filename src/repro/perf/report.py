"""JSON-stable snapshot of one measurement run.

:class:`PerfReport` freezes a :class:`~repro.perf.registry.PerfRegistry`
plus optional cProfile hotspot rows into a schema the CLI prints and CI
archives. The ``derived`` block pre-computes the ratios people actually
read (walk-cache hit rate, hashes per simulated event) so a report is
interpretable without a calculator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Sequence, Tuple

__all__ = ["PerfReport"]


def _derived(counters: Mapping[str, int]) -> Dict[str, float]:
    """Ratios worth reading directly off a report."""
    out: Dict[str, float] = {}
    hits = counters.get("crypto.walk_cache.hits", 0)
    misses = counters.get("crypto.walk_cache.misses", 0)
    if hits + misses:
        out["walk_cache_hit_rate"] = hits / (hits + misses)
    events = counters.get("sim.events", 0)
    if events:
        out["hashes_per_event"] = counters.get("crypto.hash", 0) / events
        out["macs_per_event"] = counters.get("crypto.mac", 0) / events
    return out


@dataclass(frozen=True)
class PerfReport:
    """One measurement run, JSON-schema stable (docs/API.md).

    Attributes:
        label: what was measured (scenario name, soak preset, ...).
        wall_seconds: wall time of the measured call.
        counters / observations / timers: the registry snapshot.
        hotspots: optional cProfile rows, hottest first, each with
            ``function``, ``calls``, ``tottime`` and ``cumtime`` keys.
    """

    label: str
    wall_seconds: float
    counters: Dict[str, int] = field(default_factory=dict)
    observations: Dict[str, Dict[str, float]] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    hotspots: Tuple[Dict[str, Any], ...] = ()

    @classmethod
    def from_registry(
        cls,
        registry: Any,
        label: str,
        wall_seconds: float,
        hotspots: Sequence[Dict[str, Any]] = (),
    ) -> "PerfReport":
        """Freeze ``registry`` (a :class:`PerfRegistry`) into a report."""
        snapshot = registry.snapshot()
        return cls(
            label=label,
            wall_seconds=wall_seconds,
            counters=snapshot["counters"],
            observations=snapshot["observations"],
            timers=snapshot["timers"],
            hotspots=tuple(dict(row) for row in hotspots),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The report as a plain JSON-serialisable dict."""
        return {
            "label": self.label,
            "wall_seconds": self.wall_seconds,
            "counters": dict(self.counters),
            "observations": {k: dict(v) for k, v in self.observations.items()},
            "timers": dict(self.timers),
            "derived": _derived(self.counters),
            "hotspots": [dict(row) for row in self.hotspots],
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
