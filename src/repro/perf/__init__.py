"""Zero-cost-when-disabled performance instrumentation.

The package exposes one process-wide *active registry* slot,
:data:`ACTIVE`. Instrumented hot paths — the crypto kernels, the
discrete-event loop, the broadcast medium, the net harness — guard
every update with::

    from repro import perf
    ...
    if perf.ACTIVE is not None:
        perf.ACTIVE.incr("crypto.hash")

so disabled instrumentation costs a single module-attribute load per
call site (the guard bench in ``benchmarks/bench_perf_overhead.py``
keeps that claim honest). Enable collection around any block with::

    with perf.collecting() as registry:
        run_scenario(config)
    print(registry.snapshot())

Well-known names (see docs/API.md for the full table):

============================  =============================================
``crypto.hash``               one-way function applications (chain steps)
``crypto.mac``                HMAC computations (MAC + μMAC, all schemes)
``crypto.walk_cache.hits``    chain-walk cache hits (O(1) re-verifications)
``crypto.walk_cache.misses``  chain-walk cache misses (full back-walks)
``crypto.chain_walk``         observation: walk lengths in chain steps
``sim.events``                simulator events executed
``sim.queue_depth``           observation: event-queue depth per event
``sim.broadcasts``            packets offered to the broadcast medium
``sim.deliveries``            post-loss deliveries scheduled
``sim.drops``                 deliveries lost to the channel
``net.soak_wall_seconds``     observation: wall time per soak
============================  =============================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.perf.registry import Observation, PerfRegistry
from repro.perf.report import PerfReport

__all__ = [
    "ACTIVE",
    "Observation",
    "PerfRegistry",
    "PerfReport",
    "collecting",
    "disable",
    "enable",
    "enabled",
    "incr",
    "observe",
]

#: The process-wide active registry; ``None`` means instrumentation is
#: disabled and every guarded call site is a no-op.
ACTIVE: Optional[PerfRegistry] = None


def enabled() -> bool:
    """Whether a registry is currently collecting."""
    return ACTIVE is not None


def enable(registry: Optional[PerfRegistry] = None) -> PerfRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global ACTIVE
    ACTIVE = registry if registry is not None else PerfRegistry()
    return ACTIVE


def disable() -> Optional[PerfRegistry]:
    """Stop collecting; returns the registry that was active, if any."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    return previous


@contextmanager
def collecting(registry: Optional[PerfRegistry] = None) -> Iterator[PerfRegistry]:
    """Collect into ``registry`` (or a fresh one) for the block's duration.

    Nests: the previously active registry (including ``None``) is
    restored on exit, so a profiled scenario inside a profiled soak
    attributes its counters to the innermost collector.
    """
    global ACTIVE
    previous = ACTIVE
    active = registry if registry is not None else PerfRegistry()
    ACTIVE = active
    try:
        yield active
    finally:
        ACTIVE = previous


def incr(name: str, amount: int = 1) -> None:
    """Increment a counter on the active registry (no-op when disabled)."""
    if ACTIVE is not None:
        ACTIVE.incr(name, amount)


def observe(name: str, value: float) -> None:
    """Record an observation on the active registry (no-op when disabled)."""
    if ACTIVE is not None:
        ACTIVE.observe(name, value)
