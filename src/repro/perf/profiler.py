"""cProfile + counter wrapper: one call in, one :class:`PerfReport` out.

``repro profile`` is a thin shim over :func:`profile_call`, which runs
any callable under both the deterministic-counter layer (hash/MAC
invocations, chain-walk lengths, queue depths) and ``cProfile`` (where
the wall time actually went), then folds both views into a single
JSON-ready report. The counters say *how much work* the run did; the
profile says *which Python frames* burned the time — hot-path PRs need
both numbers to argue an optimisation moved either one.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro import perf
from repro.errors import ConfigurationError
from repro.perf.registry import PerfRegistry
from repro.perf.report import PerfReport

__all__ = ["ProfileOutcome", "profile_call"]


@dataclass(frozen=True)
class ProfileOutcome:
    """What :func:`profile_call` hands back."""

    result: Any
    report: PerfReport


def _hotspot_rows(profiler: cProfile.Profile, top: int) -> List[Dict[str, Any]]:
    """Top ``top`` frames by cumulative time, JSON-ready."""
    stats = pstats.Stats(profiler)
    rows: List[Dict[str, Any]] = []
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],
        reverse=True,
    )
    for (filename, lineno, name), (_cc, ncalls, tottime, cumtime, _callers) in entries:
        where = f"{Path(filename).name}:{lineno}" if lineno else filename
        rows.append(
            {
                "function": f"{where}:{name}",
                "calls": ncalls,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
        if len(rows) >= top:
            break
    return rows


def profile_call(
    fn: Callable[..., Any],
    *args: Any,
    label: str = "",
    top: int = 15,
    registry: Optional[PerfRegistry] = None,
    **kwargs: Any,
) -> ProfileOutcome:
    """Run ``fn(*args, **kwargs)`` under counters + cProfile.

    Args:
        fn: the callable to measure.
        label: report label (defaults to the callable's qualname).
        top: hotspot rows to keep, hottest (by cumulative time) first.
        registry: collect into an existing registry instead of a fresh
            one (lets a caller accumulate several profiled calls).

    Returns:
        :class:`ProfileOutcome` with the callable's return value and
        the frozen :class:`PerfReport`.
    """
    if top < 1:
        raise ConfigurationError(f"top must be >= 1, got {top}")
    profiler = cProfile.Profile()
    with perf.collecting(registry) as active:
        started = time.perf_counter()
        try:
            result = profiler.runcall(fn, *args, **kwargs)
        finally:
            wall = time.perf_counter() - started
    report = PerfReport.from_registry(
        active,
        label=label or getattr(fn, "__qualname__", repr(fn)),
        wall_seconds=wall,
        hotspots=_hotspot_rows(profiler, top),
    )
    return ProfileOutcome(result=result, report=report)
