"""repro — reproduction of "Toward Optimal DoS-Resistant Authentication
in Crowdsensing Networks via Evolutionary Game" (ICDCS 2016).

Layers (see DESIGN.md for the full inventory):

- :mod:`repro.crypto` / :mod:`repro.timesync` / :mod:`repro.buffers` —
  the substrates every TESLA-family protocol stands on;
- :mod:`repro.protocols` — TESLA, μTESLA, multi-level μTESLA, EFTP,
  EDRP, TESLA++ and the paper's DAP;
- :mod:`repro.game` — the attack-defense evolutionary game: payoffs,
  replicator dynamics, ESS analysis, Algorithm 3 buffer optimisation,
  and the adaptive runtime policy;
- :mod:`repro.sim` — the discrete-event crowdsensing simulator the
  evaluation runs on;
- :mod:`repro.analysis` — the models behind the paper's figures;
- :mod:`repro.engine` — the experiment engine the compute layers run
  on: pluggable serial/parallel executors and a content-addressed
  result cache.

Quickstart::

    from repro.game import paper_parameters, realized_ess
    point, trajectory = realized_ess(paper_parameters(p=0.8, m=30))
    print(point.ess_type, trajectory.final)

    from repro.sim import ScenarioConfig, run_scenario
    result = run_scenario(ScenarioConfig(protocol="dap",
                                         attack_fraction=0.8, buffers=8))
    print(result.authentication_rate)
"""

from repro import analysis, buffers, crypto, engine, game, protocols, sim, timesync
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    "analysis",
    "buffers",
    "crypto",
    "engine",
    "game",
    "protocols",
    "sim",
    "timesync",
]
