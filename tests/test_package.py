"""Package-surface tests: the public API stays importable and coherent."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    AuthenticationError,
    BufferError_,
    ConfigurationError,
    ConvergenceError,
    CryptoError,
    GameError,
    KeyChainError,
    KeyChainExhaustedError,
    KeyVerificationError,
    ProtocolError,
    ReproError,
    SchedulingError,
    SecurityConditionError,
    SimulationError,
    TimeSyncError,
)


class TestVersion:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (
            ConfigurationError,
            CryptoError,
            KeyChainError,
            KeyChainExhaustedError,
            KeyVerificationError,
            TimeSyncError,
            SecurityConditionError,
            ProtocolError,
            AuthenticationError,
            BufferError_,
            GameError,
            ConvergenceError,
            SimulationError,
            SchedulingError,
        ):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_specialisations(self):
        assert issubclass(KeyChainExhaustedError, KeyChainError)
        assert issubclass(SecurityConditionError, TimeSyncError)
        assert issubclass(ConvergenceError, GameError)
        assert issubclass(SchedulingError, SimulationError)


class TestPublicSurface:
    @pytest.mark.parametrize(
        "module,name",
        [
            ("repro.crypto", "KeyChain"),
            ("repro.crypto", "TwoLevelKeyChain"),
            ("repro.timesync", "SecurityCondition"),
            ("repro.buffers", "ReservoirBuffer"),
            ("repro.protocols", "DapSender"),
            ("repro.protocols", "DapReceiver"),
            ("repro.protocols", "MultiLevelReceiver"),
            ("repro.protocols", "TeslaPlusPlusReceiver"),
            ("repro.game", "GameParameters"),
            ("repro.game", "ReplicatorDynamics"),
            ("repro.game", "BufferOptimizer"),
            ("repro.game", "AdaptiveDefense"),
            ("repro.sim", "run_scenario"),
            ("repro.sim", "Simulator"),
            ("repro.analysis", "fig5_series"),
            ("repro.analysis", "cost_curves"),
            ("repro.analysis", "regime_bands"),
        ],
    )
    def test_name_exported(self, module, name):
        import importlib

        mod = importlib.import_module(module)
        assert hasattr(mod, name)
        assert name in mod.__all__

    def test_all_lists_are_accurate(self):
        import importlib

        for module in (
            "repro",
            "repro.crypto",
            "repro.timesync",
            "repro.buffers",
            "repro.protocols",
            "repro.game",
            "repro.sim",
            "repro.analysis",
        ):
            mod = importlib.import_module(module)
            for name in mod.__all__:
                assert hasattr(mod, name), f"{module}.{name} missing"
