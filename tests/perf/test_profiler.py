"""profile_call and the PerfReport JSON schema."""

from __future__ import annotations

import json

import pytest

from repro.crypto.onewayfn import OneWayFunction
from repro.errors import ConfigurationError
from repro.perf.profiler import profile_call
from repro.perf.report import PerfReport
from repro.perf.registry import PerfRegistry


def _hash_burst(function: OneWayFunction, steps: int) -> bytes:
    return function.iterate(b"\x00" * function.output_bytes, steps)


class TestProfileCall:
    def test_returns_result_and_counters(self):
        function = OneWayFunction("F")
        outcome = profile_call(_hash_burst, function, 50, label="burst")
        assert outcome.result == function.iterate(b"\x00" * function.output_bytes, 50)
        assert outcome.report.label == "burst"
        assert outcome.report.counters["crypto.hash"] == 50
        assert outcome.report.wall_seconds >= 0.0

    def test_hotspots_present_and_bounded(self):
        function = OneWayFunction("F")
        outcome = profile_call(_hash_burst, function, 20, top=3)
        assert 0 < len(outcome.report.hotspots) <= 3
        row = outcome.report.hotspots[0]
        assert {"function", "calls", "tottime", "cumtime"} <= set(row)

    def test_rejects_bad_top(self):
        with pytest.raises(ConfigurationError):
            profile_call(lambda: None, top=0)

    def test_accumulates_into_shared_registry(self):
        function = OneWayFunction("F")
        registry = PerfRegistry()
        profile_call(_hash_burst, function, 10, registry=registry)
        profile_call(_hash_burst, function, 10, registry=registry)
        assert registry.counter("crypto.hash") == 20

    def test_default_label_is_qualname(self):
        outcome = profile_call(_hash_burst, OneWayFunction("F"), 1)
        assert "_hash_burst" in outcome.report.label


class TestPerfReportSchema:
    def test_round_trips_through_json(self):
        function = OneWayFunction("F")
        outcome = profile_call(_hash_burst, function, 30, label="schema")
        document = json.loads(outcome.report.to_json())
        assert document["label"] == "schema"
        assert document["counters"]["crypto.hash"] == 30
        assert "derived" in document
        assert isinstance(document["hotspots"], list)

    def test_derived_ratios(self):
        report = PerfReport(
            label="x",
            wall_seconds=0.1,
            counters={
                "crypto.hash": 100,
                "crypto.mac": 50,
                "sim.events": 10,
                "crypto.walk_cache.hits": 3,
                "crypto.walk_cache.misses": 1,
            },
        )
        derived = report.to_dict()["derived"]
        assert derived["hashes_per_event"] == pytest.approx(10.0)
        assert derived["macs_per_event"] == pytest.approx(5.0)
        assert derived["walk_cache_hit_rate"] == pytest.approx(0.75)

    def test_empty_report(self):
        report = PerfReport(label="empty", wall_seconds=0.0)
        document = report.to_dict()
        assert document["derived"] == {}
        assert document["counters"] == {}
