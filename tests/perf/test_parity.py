"""Kernels on/off must be bit-identical end to end.

The whole point of the midstate/walk-cache/pebbling layer is that it is
*exact*: same commitment, same keys, same MACs, same simulation
outcomes. These tests run the seeded scenario pipeline both ways and
compare frozen summaries — if a kernel ever drifts from its reference
path, this is the test that goes red.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.crypto.kernels import kernels_disabled
from repro.sim.scenario import ScenarioConfig, run_scenario

CONFIGS = [
    ScenarioConfig(protocol="dap", intervals=12, receivers=3, buffers=4,
                   attack_fraction=0.5, loss_probability=0.1, seed=7),
    ScenarioConfig(protocol="tesla_pp", intervals=10, receivers=2, buffers=3,
                   attack_fraction=0.3, seed=11),
    ScenarioConfig(protocol="tesla", intervals=10, receivers=2, buffers=4,
                   loss_probability=0.2, seed=3),
]


@pytest.mark.parametrize(
    "config", CONFIGS, ids=[config.protocol for config in CONFIGS]
)
def test_scenario_identical_with_kernels_on_and_off(config):
    with_kernels = run_scenario(config)
    with kernels_disabled():
        naive = run_scenario(config)
    assert with_kernels.fleet == naive.fleet
    assert with_kernels.sent_authentic == naive.sent_authentic
    assert with_kernels.forged_bandwidth_fraction == pytest.approx(
        naive.forged_bandwidth_fraction
    )


def test_scenario_identical_with_instrumentation_on():
    config = CONFIGS[0]
    bare = run_scenario(config)
    with perf.collecting() as registry:
        instrumented = run_scenario(config)
    assert instrumented.fleet == bare.fleet
    # ... and the run actually counted the hot path.
    assert registry.counter("crypto.hash") > 0
    assert registry.counter("crypto.mac") > 0
    assert registry.counter("sim.events") > 0
    assert registry.counter("sim.broadcasts") > 0


def test_instrumented_counters_are_consistent():
    config = CONFIGS[0]
    with perf.collecting() as registry:
        run_scenario(config)
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    # Deliveries + drops can't exceed broadcasts x receivers.
    assert counters["sim.deliveries"] <= counters["sim.broadcasts"] * (
        config.receivers + 1
    )
    # Queue depth was observed once per executed event.
    assert snapshot["observations"]["sim.queue_depth"]["count"] == counters[
        "sim.events"
    ]
