"""The bench runner: document schema, tripwires, JSON output."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.perf.bench import (
    BENCH_PRESETS,
    DES_PARITY_MAX_RECEIVERS,
    SCENARIO_PRESETS,
    SIM_BENCH_PRESETS,
    run_bench,
    run_sim_bench,
    write_bench_json,
)


class TestPresets:
    def test_fig5_preset_matches_the_paper_operating_point(self):
        fig5 = SCENARIO_PRESETS["fig5"]
        assert fig5.protocol == "dap"
        assert fig5.attack_fraction == 0.5
        assert fig5.loss_probability == 0.1

    def test_every_bench_preset_names_a_scenario(self):
        for sizes in BENCH_PRESETS.values():
            assert sizes["scenario"] in SCENARIO_PRESETS

    def test_rejects_unknown_preset_and_bad_repeat(self):
        with pytest.raises(ConfigurationError):
            run_bench("no-such-preset")
        with pytest.raises(ConfigurationError):
            run_bench("smoke", repeat=0)


@pytest.fixture(scope="module")
def smoke_document():
    return run_bench("smoke", repeat=1)


class TestRunBench:
    def test_document_schema(self, smoke_document):
        assert smoke_document["preset"] == "smoke"
        results = smoke_document["results"]
        assert set(results) == {
            "one_way", "keychain_walks", "mac_verify", "mac_batch",
            "umac_reservoir", "fast_umac", "pebbled", "scenario",
        }
        for section in ("one_way", "keychain_walks", "mac_verify"):
            assert results[section]["naive_ops_per_sec"] > 0
            assert results[section]["kernel_ops_per_sec"] > 0
            assert results[section]["speedup"] > 0
        for section in ("mac_batch", "umac_reservoir"):
            assert results[section]["scalar_ops_per_sec"] > 0
            assert results[section]["batched_ops_per_sec"] > 0
            assert results[section]["speedup"] > 0

    def test_umac_reservoir_checks_survivor_identity(self, smoke_document):
        assert smoke_document["results"]["umac_reservoir"][
            "identical_survivors"
        ] is True

    def test_fast_umac_section_is_marked_non_faithful(self, smoke_document):
        fast = smoke_document["results"]["fast_umac"]
        assert fast["faithful_bytes"] is False
        assert fast["hmac_scalar_ops_per_sec"] > 0
        assert fast["fast_ops_per_sec"] > 0
        assert fast["fast_speedup"] > 0

    def test_scenario_reports_the_three_way_comparison(self, smoke_document):
        scenario = smoke_document["results"]["scenario"]
        assert scenario["naive_wall_seconds"] > 0
        assert scenario["reference_wall_seconds"] > 0
        assert scenario["kernel_wall_seconds"] > 0
        assert scenario["speedup"] > 0
        assert scenario["replay_speedup"] > 0
        assert scenario["receivers"] == BENCH_PRESETS["smoke"][
            "scenario_receivers"
        ]

    def test_keychain_walks_meet_the_acceptance_bar(self, smoke_document):
        """The checked-in artifact claims >= 2x on the keychain
        micro-bench (midstate + walk cache vs naive, same run)."""
        assert smoke_document["results"]["keychain_walks"]["speedup"] >= 2.0

    def test_scenario_counters_nonzero(self, smoke_document):
        counters = smoke_document["results"]["scenario"]["counters"]
        assert counters["crypto.hash"] > 0
        assert counters["crypto.mac"] > 0
        assert counters["crypto.mac.batches"] > 0
        assert smoke_document["results"]["scenario"]["identical_summaries"]

    def test_pebbled_section_reports_the_memory_story(self, smoke_document):
        pebbled = smoke_document["results"]["pebbled"]
        assert pebbled["peak_stored_keys"] <= pebbled["peak_bound"]
        assert pebbled["peak_stored_keys"] < pebbled["dense_stored_keys"] // 100

    def test_write_bench_json(self, smoke_document, tmp_path):
        path = tmp_path / "BENCH_crypto.json"
        write_bench_json(path, smoke_document)
        loaded = json.loads(path.read_text())
        assert loaded["preset"] == "smoke"
        assert path.read_text().endswith("\n")


class TestCheckedInArtifact:
    def test_bench_crypto_artifact_meets_the_speedup_floor(self):
        """The committed BENCH_crypto.json documents the fig5 end-to-end
        speedup the CI perf-smoke job enforces: naive DES stack vs the
        fleet kernel stack, summaries byte-identical in the same run."""
        path = Path(__file__).resolve().parents[2] / "BENCH_crypto.json"
        scenario = json.loads(path.read_text())["results"]["scenario"]
        assert scenario["identical_summaries"] is True
        assert scenario["speedup"] >= 1.5
        assert scenario["replay_speedup"] > 0
        assert scenario["counters"]["crypto.mac.batches"] > 0


class TestSimBenchReceiversScaling:
    def test_sim_presets_cover_every_protocol_family(self):
        from repro.scenarios.families import ALL_PROTOCOLS

        for sizes in SIM_BENCH_PRESETS.values():
            assert set(sizes) == {f"fleet_{p}" for p in ALL_PROTOCOLS}

    def test_scaling_axis_schema_and_parity(self):
        document = run_sim_bench(
            preset="smoke", repeat=1, receivers=[20, 50]
        )
        scaling = document["receivers_scaling"]
        assert scaling["config"] == "fig5-t2"
        entries = scaling["entries"]
        assert [entry["receivers"] for entry in entries] == [20, 50]
        for entry in entries:
            assert entry["vectorized_wall_seconds"] > 0
            assert entry["peak_rss_kb"] > 0
            assert entry["shards"] >= 1
            assert 0.0 <= entry["mean_authentication_rate"] <= 1.0
            # Both counts sit under the DES-parity ceiling, so the
            # speedup is a checked fact, not a projection.
            assert entry["receivers"] <= DES_PARITY_MAX_RECEIVERS
            assert entry["identical_summaries"] is True
            assert entry["speedup"] > 0

    def test_no_scaling_section_without_receivers(self):
        document = run_sim_bench(preset="smoke", repeat=1)
        assert "receivers_scaling" not in document

    def test_rejects_non_positive_receiver_counts(self):
        with pytest.raises(ConfigurationError):
            run_sim_bench(preset="smoke", repeat=1, receivers=[100, 0])
