"""The bench runner: document schema, tripwires, JSON output."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.perf.bench import (
    BENCH_PRESETS,
    SCENARIO_PRESETS,
    run_bench,
    write_bench_json,
)


class TestPresets:
    def test_fig5_preset_matches_the_paper_operating_point(self):
        fig5 = SCENARIO_PRESETS["fig5"]
        assert fig5.protocol == "dap"
        assert fig5.attack_fraction == 0.5
        assert fig5.loss_probability == 0.1

    def test_every_bench_preset_names_a_scenario(self):
        for sizes in BENCH_PRESETS.values():
            assert sizes["scenario"] in SCENARIO_PRESETS

    def test_rejects_unknown_preset_and_bad_repeat(self):
        with pytest.raises(ConfigurationError):
            run_bench("no-such-preset")
        with pytest.raises(ConfigurationError):
            run_bench("smoke", repeat=0)


@pytest.fixture(scope="module")
def smoke_document():
    return run_bench("smoke", repeat=1)


class TestRunBench:
    def test_document_schema(self, smoke_document):
        assert smoke_document["preset"] == "smoke"
        results = smoke_document["results"]
        assert set(results) == {
            "one_way", "keychain_walks", "mac_verify", "pebbled", "scenario"
        }
        for section in ("one_way", "keychain_walks", "mac_verify"):
            assert results[section]["naive_ops_per_sec"] > 0
            assert results[section]["kernel_ops_per_sec"] > 0
            assert results[section]["speedup"] > 0

    def test_keychain_walks_meet_the_acceptance_bar(self, smoke_document):
        """The checked-in artifact claims >= 2x on the keychain
        micro-bench (midstate + walk cache vs naive, same run)."""
        assert smoke_document["results"]["keychain_walks"]["speedup"] >= 2.0

    def test_scenario_counters_nonzero(self, smoke_document):
        counters = smoke_document["results"]["scenario"]["counters"]
        assert counters["crypto.hash"] > 0
        assert counters["crypto.mac"] > 0
        assert smoke_document["results"]["scenario"]["identical_summaries"]

    def test_pebbled_section_reports_the_memory_story(self, smoke_document):
        pebbled = smoke_document["results"]["pebbled"]
        assert pebbled["peak_stored_keys"] <= pebbled["peak_bound"]
        assert pebbled["peak_stored_keys"] < pebbled["dense_stored_keys"] // 100

    def test_write_bench_json(self, smoke_document, tmp_path):
        path = tmp_path / "BENCH_crypto.json"
        write_bench_json(path, smoke_document)
        loaded = json.loads(path.read_text())
        assert loaded["preset"] == "smoke"
        assert path.read_text().endswith("\n")
