"""PerfRegistry, Observation and the module-level ACTIVE slot."""

from __future__ import annotations

import pytest

from repro import perf
from repro.perf.registry import Observation, PerfRegistry


class TestObservation:
    def test_empty_summary(self):
        obs = Observation()
        assert obs.mean == 0.0
        assert obs.to_dict() == {
            "count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0
        }

    def test_folds_samples(self):
        obs = Observation()
        for value in (3.0, 1.0, 2.0):
            obs.update(value)
        assert obs.count == 3
        assert obs.mean == pytest.approx(2.0)
        assert obs.minimum == 1.0 and obs.maximum == 3.0


class TestPerfRegistry:
    def test_counters(self):
        registry = PerfRegistry()
        registry.incr("a")
        registry.incr("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0

    def test_observations_and_snapshot(self):
        registry = PerfRegistry()
        registry.observe("walk", 3.0)
        registry.observe("walk", 5.0)
        snapshot = registry.snapshot()
        assert snapshot["observations"]["walk"]["count"] == 2
        assert snapshot["observations"]["walk"]["mean"] == pytest.approx(4.0)
        assert snapshot["counters"] == {}

    def test_timer_accumulates(self):
        registry = PerfRegistry()
        with registry.timer("block"):
            pass
        with registry.timer("block"):
            pass
        assert registry.timers["block"] >= 0.0

    def test_hit_rate(self):
        registry = PerfRegistry()
        assert registry.hit_rate("h", "m") == 0.0
        registry.incr("h", 3)
        registry.incr("m", 1)
        assert registry.hit_rate("h", "m") == pytest.approx(0.75)


class TestActiveSlot:
    def test_disabled_by_default(self):
        assert perf.ACTIVE is None
        assert not perf.enabled()
        perf.incr("ignored")  # must be a silent no-op
        perf.observe("ignored", 1.0)

    def test_collecting_installs_and_restores(self):
        assert perf.ACTIVE is None
        with perf.collecting() as registry:
            assert perf.ACTIVE is registry
            perf.incr("inside")
        assert perf.ACTIVE is None
        assert registry.counter("inside") == 1

    def test_collecting_nests(self):
        with perf.collecting() as outer:
            with perf.collecting() as inner:
                perf.incr("x")
            assert perf.ACTIVE is outer
        assert inner.counter("x") == 1
        assert outer.counter("x") == 0

    def test_enable_disable(self):
        registry = perf.enable()
        try:
            assert perf.ACTIVE is registry
        finally:
            assert perf.disable() is registry
        assert perf.ACTIVE is None


class TestConcurrency:
    """The registry is shared by a worker's soak + heartbeat threads;
    reset() exports deltas that must neither drop nor double-count."""

    def test_concurrent_incr_is_lossless(self):
        import threading

        registry = PerfRegistry()
        producers, per_producer = 4, 2000

        def pump():
            for _ in range(per_producer):
                registry.incr("events")

        threads = [threading.Thread(target=pump) for _ in range(producers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("events") == producers * per_producer

    def test_reset_deltas_partition_the_stream(self):
        """Every increment lands in exactly one exported delta: the sum
        of all reset() snapshots plus the final state equals the total,
        however the resets interleave with the producers."""
        import threading

        registry = PerfRegistry()
        producers, per_producer = 4, 2000
        deltas = []
        stop = threading.Event()

        def pump():
            for _ in range(per_producer):
                registry.incr("events")
                registry.observe("w", 1.0)

        def reaper():
            while not stop.is_set():
                deltas.append(registry.reset())
            deltas.append(registry.reset())

        threads = [threading.Thread(target=pump) for _ in range(producers)]
        collector = threading.Thread(target=reaper)
        collector.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        collector.join()

        total = producers * per_producer
        counted = sum(d["counters"].get("events", 0) for d in deltas)
        observed = sum(
            d["observations"].get("w", {}).get("count", 0) for d in deltas
        )
        assert counted == total
        assert observed == total
        assert registry.counter("events") == 0  # fully drained

    def test_reset_returns_snapshot_and_clears(self):
        registry = PerfRegistry()
        registry.incr("c", 3)
        registry.observe("o", 2.0)
        with registry.timer("t"):
            pass
        delta = registry.reset()
        assert delta["counters"] == {"c": 3}
        assert delta["observations"]["o"]["count"] == 1
        assert "t" in delta["timers"]
        assert registry.snapshot() == {
            "counters": {}, "observations": {}, "timers": {}
        }


class TestZeroOverheadWhenDisabled:
    def test_module_helpers_never_touch_a_registry(self):
        """The zero-overhead invariant: with no ACTIVE registry the
        module-level helpers return before any registry call — pinned
        by making every registry method explode."""

        class Tripwire(PerfRegistry):
            def incr(self, name, amount=1):  # pragma: no cover
                raise AssertionError("registry touched while disabled")

            def observe(self, name, value):  # pragma: no cover
                raise AssertionError("registry touched while disabled")

        assert perf.ACTIVE is None
        perf.incr("ignored")
        perf.observe("ignored", 1.0)
        # And the same calls do reach an enabled registry:
        registry = Tripwire()
        perf.enable(registry)
        try:
            with pytest.raises(AssertionError):
                perf.incr("now-it-counts")
        finally:
            perf.disable()
