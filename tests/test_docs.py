"""Documentation-consistency tests.

Docs rot silently; these tests execute the README's code snippets and
check that every artifact the documentation references actually exists,
so `pytest` fails the moment the docs and the code disagree.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"{name} missing"
    return path.read_text()


class TestDeliverablesExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE", "pyproject.toml"],
    )
    def test_file_present_and_nonempty(self, name):
        assert len(read(name)) > 100 or name == "LICENSE"

    def test_examples_present(self):
        examples = sorted((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        names = {path.name for path in examples}
        assert "quickstart.py" in names

    def test_benchmarks_cover_every_figure(self):
        benches = {path.name for path in (ROOT / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_table2_payoff.py",
            "bench_fig5_bandwidth.py",
            "bench_fig6_evolution.py",
            "bench_fig7_optimal_m.py",
            "bench_fig8_defense_cost.py",
            "bench_memory_cost.py",
        ):
            assert required in benches, required


class TestReadmeCode:
    def _python_blocks(self):
        text = read("README.md")
        return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)

    def test_readme_has_code(self):
        assert self._python_blocks()

    def test_readme_snippets_execute(self):
        """Every fenced python block in the README must run as-is."""
        for block in self._python_blocks():
            exec(compile(block, "<README>", "exec"), {})  # noqa: S102

    def test_readme_quickstart_numbers_are_current(self):
        """The README quotes m*=13 and cost 59.56 at p=0.8 — keep true."""
        from repro.game import BufferOptimizer, paper_parameters

        result = BufferOptimizer(paper_parameters(p=0.8, m=1)).optimize()
        assert result.optimal_m == 13
        assert round(result.optimal_cost, 2) == 59.56


class TestCrossReferences:
    def test_design_modules_exist(self):
        """Every `something.py` DESIGN.md names under src must exist."""
        text = read("DESIGN.md")
        for match in re.finditer(r"^\s{4}(\w+\.py)\s", text, flags=re.MULTILINE):
            name = match.group(1)
            hits = list((ROOT / "src" / "repro").rglob(name))
            assert hits, f"DESIGN.md references missing module {name}"

    def test_design_bench_targets_exist(self):
        text = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)

    def test_experiments_references_existing_benches(self):
        text = read("EXPERIMENTS.md")
        for match in re.finditer(r"`(bench_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)

    def test_readme_example_table_matches_directory(self):
        text = read("README.md")
        for match in re.finditer(r"examples/(\w+\.py)", text):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(1)
