"""Property tests: PebbledKeyChain is a drop-in for KeyChain."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.kernels import kernels_disabled
from repro.crypto.keychain import KeyChain
from repro.crypto.pebbled import (
    PEBBLED_THRESHOLD,
    PebbledKeyChain,
    make_key_chain,
    pebble_bound,
)
from repro.crypto.onewayfn import OneWayFunction
from repro.errors import (
    ConfigurationError,
    KeyChainError,
    KeyChainExhaustedError,
)

SEED = b"pebbled-test-seed"

#: The explicit drop-in lengths from the acceptance checklist: edge
#: (1, 2), around a power of two (63, 64, 65), and a realistic chain.
DROP_IN_LENGTHS = (1, 2, 63, 64, 65, 1000)


@pytest.fixture(scope="module")
def function():
    return OneWayFunction("F")


class TestDropInEquivalence:
    @pytest.mark.parametrize("length", DROP_IN_LENGTHS)
    def test_commitment_and_every_key(self, length, function):
        dense = KeyChain(SEED, length, function)
        pebbled = PebbledKeyChain(SEED, length, function)
        assert pebbled.commitment == dense.commitment
        for index in range(length + 1):
            assert pebbled.key(index) == dense.key(index), index

    @pytest.mark.parametrize("length", DROP_IN_LENGTHS)
    def test_same_errors(self, length, function):
        dense = KeyChain(SEED, length, function)
        pebbled = PebbledKeyChain(SEED, length, function)
        for chain in (dense, pebbled):
            with pytest.raises(KeyChainError):
                chain.key(-1)
            with pytest.raises(KeyChainExhaustedError):
                chain.key(length + 1)
        assert len(pebbled) == len(dense) == length

    def test_rejects_nonpositive_length(self, function):
        with pytest.raises(ConfigurationError):
            PebbledKeyChain(SEED, 0, function)
        with pytest.raises(ConfigurationError):
            PebbledKeyChain(SEED, -3, function)

    def test_verify_and_derive_match_dense(self, function):
        dense = KeyChain(SEED, 40, function)
        pebbled = PebbledKeyChain(SEED, 40, function)
        key = pebbled.key(25)
        assert pebbled.verify(key, 25, pebbled.key(10), 10)
        assert pebbled.derive(key, 5) == dense.key(20)
        with pytest.raises(KeyChainError):
            pebbled.verify(key, 25, pebbled.key(30), 30)

    def test_label_changes_the_chain(self, function):
        assert (
            PebbledKeyChain(SEED, 8, function, label="a").commitment
            != PebbledKeyChain(SEED, 8, function, label="b").commitment
        )

    @settings(max_examples=30, deadline=None)
    @given(
        length=st.integers(min_value=1, max_value=300),
        data=st.data(),
    )
    def test_random_access_matches_dense(self, length, data):
        function = OneWayFunction("F")
        dense = KeyChain(SEED, length, function)
        pebbled = PebbledKeyChain(SEED, length, function)
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=length),
                min_size=1,
                max_size=30,
            )
        )
        for index in indices:
            assert pebbled.key(index) == dense.key(index)
        assert pebbled.peak_stored_keys <= pebble_bound(length)


class TestMemoryBound:
    @pytest.mark.parametrize("length", DROP_IN_LENGTHS)
    def test_peak_bound_ascending(self, length, function):
        pebbled = PebbledKeyChain(SEED, length, function)
        for index in range(1, length + 1):
            pebbled.key(index)
        assert pebbled.peak_stored_keys <= pebble_bound(length)

    def test_million_interval_chain_peak(self, function):
        """The acceptance-criterion bound: n = 10^6 stays within
        2*ceil(log2 n) + 2 = 42 stored keys. The peak occurs during the
        early traversal (densest subdivision), so walking a prefix and
        spot-checking afterwards exercises it without a 10^6-key walk.
        """
        length = 1_000_000
        pebbled = PebbledKeyChain(SEED, length, function)
        for index in range(1, 2049):
            pebbled.key(index)
        for index in (250_000, 500_001, 999_999, length):
            pebbled.key(index)
        assert pebble_bound(length) == 42
        assert pebbled.peak_stored_keys <= 42
        assert pebbled.stored_keys <= 42

    def test_spot_check_million_chain_against_authenticator(self, function):
        """A pebbled key far up the chain still verifies against the
        commitment — the cross-check that regeneration walks are sound
        without materialising a dense million-key chain."""
        length = 1_000_000
        pebbled = PebbledKeyChain(SEED, length, function)
        key = pebbled.key(64)
        assert function.iterate(key, 64) == pebbled.commitment


class TestMakeKeyChain:
    def test_short_chains_stay_dense(self, function):
        chain = make_key_chain(SEED, 100, function)
        assert isinstance(chain, KeyChain)

    def test_long_chains_get_pebbled(self, function):
        chain = make_key_chain(SEED, PEBBLED_THRESHOLD, function)
        assert isinstance(chain, PebbledKeyChain)

    def test_explicit_override(self, function):
        assert isinstance(
            make_key_chain(SEED, 10, function, pebbled=True), PebbledKeyChain
        )
        assert isinstance(
            make_key_chain(SEED, PEBBLED_THRESHOLD, function, pebbled=False),
            KeyChain,
        )

    def test_kernels_disabled_forces_dense(self, function):
        with kernels_disabled():
            chain = make_key_chain(SEED, PEBBLED_THRESHOLD, function)
        assert isinstance(chain, KeyChain)

    def test_both_implementations_agree(self, function):
        dense = make_key_chain(SEED, 64, function, pebbled=False)
        pebbled = make_key_chain(SEED, 64, function, pebbled=True)
        assert dense.commitment == pebbled.commitment
        assert [dense.key(i) for i in range(65)] == [
            pebbled.key(i) for i in range(65)
        ]
