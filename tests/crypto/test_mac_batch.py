"""Batch MAC/μMAC APIs: scalar parity, kernel on/off parity, FAST_UMAC.

Every ``*_many`` method must be positionally bit-identical to its
scalar counterpart on both kernel paths; the opt-in ``FAST_UMAC``
BLAKE2s path is *deliberately* non-faithful byte-wise, so here we pin
its routing, determinism, gating and width contract instead.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import perf
from repro.crypto import kernels
from repro.crypto.kernels import fast_micro_mac, fast_umac, kernels_disabled
from repro.crypto.mac import MICRO_MAC_BITS, MacScheme, MicroMacScheme
from repro.errors import ConfigurationError

KEY = b"batch-key-0123456789"
LOCAL = b"receiver-local-secret"
MESSAGES = [b"msg-%04d" % i for i in range(17)]

#: The widths the storage model cares about plus both boundaries: a
#: sub-byte tag, the paper's 24-bit μMAC and 80-bit MAC, a width with
#: spare bits in its last byte, and the full-digest edges.
BOUNDARY_BITS = (1, 7, 24, 80, 255, 256)


@pytest.mark.parametrize("bits", BOUNDARY_BITS)
@pytest.mark.parametrize("enabled", [True, False], ids=["kernels", "naive"])
class TestMacComputeManyParity:
    def test_matches_scalar_compute(self, bits, enabled):
        scheme = MacScheme(mac_bits=bits)
        with fast_umac(False):
            previous = kernels.set_kernels_enabled(enabled)
            try:
                batched = scheme.compute_many(KEY, MESSAGES)
                scalar = [scheme.compute(KEY, m) for m in MESSAGES]
            finally:
                kernels.set_kernels_enabled(previous)
        assert batched == scalar
        assert all(len(mac) == (bits + 7) // 8 for mac in batched)

    def test_micro_matches_scalar_compute(self, bits, enabled):
        micro = MicroMacScheme(micro_mac_bits=bits)
        with fast_umac(False):
            previous = kernels.set_kernels_enabled(enabled)
            try:
                batched = micro.compute_many(LOCAL, MESSAGES)
                scalar = [micro.compute(LOCAL, m) for m in MESSAGES]
            finally:
                kernels.set_kernels_enabled(previous)
        assert batched == scalar


class TestKernelOnOffBitParity:
    """The kernels-on batch path and the naive reference path must
    agree bit-for-bit for every new batch API."""

    @pytest.mark.parametrize("bits", BOUNDARY_BITS)
    def test_mac_compute_many(self, bits):
        scheme = MacScheme(mac_bits=bits)
        on = scheme.compute_many(KEY, MESSAGES)
        with kernels_disabled():
            off = scheme.compute_many(KEY, MESSAGES)
        assert on == off

    @pytest.mark.parametrize("bits", BOUNDARY_BITS)
    def test_micro_compute_many(self, bits):
        micro = MicroMacScheme(micro_mac_bits=bits)
        on = micro.compute_many(LOCAL, MESSAGES)
        with kernels_disabled():
            off = micro.compute_many(LOCAL, MESSAGES)
        assert on == off

    def test_verify_many_agrees(self):
        scheme = MacScheme()
        pairs = list(zip(MESSAGES, scheme.compute_many(KEY, MESSAGES)))
        pairs[3] = (pairs[3][0], b"\x00" * 10)  # one tampered tag
        on = scheme.verify_many(KEY, pairs)
        with kernels_disabled():
            off = scheme.verify_many(KEY, pairs)
        assert on == off
        assert on == [i != 3 for i in range(len(pairs))]


class TestVerifyMany:
    def test_matches_scalar_verify(self):
        scheme = MacScheme()
        pairs = [(m, scheme.compute(KEY, m)) for m in MESSAGES]
        pairs[0] = (pairs[0][0], bytes(10))
        pairs[-1] = (b"not-the-message", pairs[-1][1])
        assert scheme.verify_many(KEY, pairs) == [
            scheme.verify(KEY, m, mac) for m, mac in pairs
        ]

    def test_micro_matches_scalar_verify(self):
        micro = MicroMacScheme()
        pairs = [(m, micro.compute(LOCAL, m)) for m in MESSAGES]
        pairs[5] = (pairs[5][0], bytes(3))
        assert micro.verify_many(LOCAL, pairs) == [
            micro.verify(LOCAL, mac, tag) for mac, tag in pairs
        ]


class TestEmptyBatches:
    def test_empty_batches_return_empty(self):
        assert MacScheme().compute_many(KEY, []) == []
        assert MacScheme().verify_many(KEY, []) == []
        assert MicroMacScheme().compute_many(LOCAL, []) == []
        assert MicroMacScheme().verify_many(LOCAL, []) == []

    def test_empty_key_still_rejected(self):
        with pytest.raises(ConfigurationError):
            MacScheme().compute_many(b"", MESSAGES)
        with pytest.raises(ConfigurationError):
            MicroMacScheme().compute_many(b"", MESSAGES)


class TestBatchCounters:
    def test_one_batch_increment_per_many_call(self):
        scheme = MacScheme()
        with perf.collecting() as registry:
            scheme.compute_many(KEY, MESSAGES)
            scheme.verify_many(
                KEY, [(m, b"\x00" * 10) for m in MESSAGES]
            )
        # verify_many routes through compute_many: two batched calls,
        # one digest counted per item in each.
        assert registry.counter("crypto.mac.batches") == 2
        assert registry.counter("crypto.mac") == 2 * len(MESSAGES)


class TestFastUmac:
    def test_default_off(self):
        assert kernels.FAST_UMAC is False
        assert kernels.fast_umac_enabled() is False

    def test_gated_by_kernel_master_switch(self):
        with fast_umac(True):
            assert kernels.fast_umac_enabled() is True
            with kernels_disabled():
                assert kernels.fast_umac_enabled() is False
            assert kernels.fast_umac_enabled() is True
        assert kernels.fast_umac_enabled() is False

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with fast_umac(True):
                raise RuntimeError("boom")
        assert kernels.FAST_UMAC is False

    def test_routes_compute_through_the_kernel(self):
        micro = MicroMacScheme()
        faithful = micro.compute(LOCAL, MESSAGES[0])
        with fast_umac(True):
            fast = micro.compute(LOCAL, MESSAGES[0])
            assert fast == fast_micro_mac(LOCAL, MESSAGES[0], MICRO_MAC_BITS)
        assert fast != faithful  # non-faithful by design
        assert len(fast) == len(faithful) == (MICRO_MAC_BITS + 7) // 8

    def test_compute_many_matches_scalar_on_the_fast_path(self):
        micro = MicroMacScheme()
        with fast_umac(True):
            batched = micro.compute_many(LOCAL, MESSAGES)
            scalar = [micro.compute(LOCAL, m) for m in MESSAGES]
        assert batched == scalar

    def test_verify_roundtrip_on_the_fast_path(self):
        micro = MicroMacScheme()
        with fast_umac(True):
            tag = micro.compute(LOCAL, MESSAGES[0])
            assert micro.verify(LOCAL, MESSAGES[0], tag)
            assert not micro.verify(LOCAL, MESSAGES[1], tag)

    def test_kernels_disabled_forces_the_faithful_path(self):
        """Parity harnesses run under kernels_disabled(); FAST_UMAC must
        not leak through it."""
        micro = MicroMacScheme()
        faithful = micro.compute(LOCAL, MESSAGES[0])
        with fast_umac(True), kernels_disabled():
            assert micro.compute(LOCAL, MESSAGES[0]) == faithful
            assert micro.compute_many(LOCAL, MESSAGES[:3]) == [
                faithful,
                micro.compute(LOCAL, MESSAGES[1]),
                micro.compute(LOCAL, MESSAGES[2]),
            ]

    def test_long_keys_fold_deterministically(self):
        long_key = b"\x7e" * 100  # past BLAKE2s's 32-byte key limit
        first = fast_micro_mac(long_key, MESSAGES[0], MICRO_MAC_BITS)
        again = fast_micro_mac(long_key, MESSAGES[0], MICRO_MAC_BITS)
        assert first == again
        assert first != fast_micro_mac(
            b"\x7e" * 32, MESSAGES[0], MICRO_MAC_BITS
        )

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=64))
    def test_fast_tag_is_deterministic_and_width_correct(self, key, data):
        for bits in (7, 24, 80, 255):
            tag = fast_micro_mac(key, data, bits)
            assert tag == fast_micro_mac(key, data, bits)
            assert len(tag) == (bits + 7) // 8
            spare = len(tag) * 8 - bits
            if spare:
                assert tag[-1] & ((1 << spare) - 1) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            fast_micro_mac(b"", b"data", 24)
        with pytest.raises(ConfigurationError):
            fast_micro_mac(b"key", b"data", 0)
        with pytest.raises(ConfigurationError):
            fast_micro_mac(b"key", b"data", 257)
