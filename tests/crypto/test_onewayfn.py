"""Unit tests for the one-way-function primitives."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.onewayfn import (
    DEFAULT_KEY_BITS,
    OneWayFunction,
    standard_functions,
    truncate_to_bits,
)
from repro.errors import ConfigurationError


class TestTruncateToBits:
    def test_exact_byte_boundary(self):
        digest = bytes(range(32))
        assert truncate_to_bits(digest, 16) == digest[:2]

    def test_non_byte_boundary_masks_low_bits(self):
        digest = b"\xff\xff\xff"
        out = truncate_to_bits(digest, 12)
        assert out == b"\xff\xf0"

    def test_output_length_rounds_up(self):
        out = truncate_to_bits(b"\xaa" * 32, 17)
        assert len(out) == 3

    def test_equal_truncations_compare_equal(self):
        a = truncate_to_bits(b"\xff\xff", 9)
        b = truncate_to_bits(b"\xff\x80", 9)
        assert a == b

    def test_zero_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            truncate_to_bits(b"\x00" * 4, 0)

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            truncate_to_bits(b"\x00" * 4, -8)

    def test_over_length_rejected(self):
        with pytest.raises(ConfigurationError):
            truncate_to_bits(b"\x00" * 2, 17)

    @given(st.binary(min_size=4, max_size=32), st.integers(min_value=1, max_value=32))
    def test_length_invariant(self, digest, bits):
        out = truncate_to_bits(digest, bits)
        assert len(out) == (bits + 7) // 8

    @pytest.mark.parametrize("bits", [7, 24, 80, 255])
    @given(digest=st.binary(min_size=32, max_size=32))
    def test_storage_model_widths(self, bits, digest):
        """The widths the bit-accurate storage model uses (sub-byte, the
        paper's 24-bit μMAC and 80-bit MAC, and the top boundary):
        prefix preserved, spare bits zeroed, truncation idempotent."""
        out = truncate_to_bits(digest, bits)
        assert len(out) == (bits + 7) // 8
        assert out[: bits // 8] == digest[: bits // 8]
        spare = len(out) * 8 - bits
        if spare:
            assert out[-1] == digest[len(out) - 1] & ((0xFF << spare) & 0xFF)
            assert out[-1] & ((1 << spare) - 1) == 0
        assert truncate_to_bits(out, bits) == out


class TestOneWayFunction:
    def test_output_width_default(self, owf):
        assert len(owf(b"x")) == DEFAULT_KEY_BITS // 8

    def test_deterministic(self, owf):
        assert owf(b"key") == owf(b"key")

    def test_different_inputs_differ(self, owf):
        assert owf(b"a") != owf(b"b")

    def test_domain_separation(self):
        f = OneWayFunction("F")
        f0 = OneWayFunction("F0")
        assert f(b"same-input") != f0(b"same-input")

    def test_iterate_zero_is_identity(self, owf):
        assert owf.iterate(b"value", 0) == b"value"

    def test_iterate_composes(self, owf):
        assert owf.iterate(b"v", 3) == owf(owf(owf(b"v")))

    def test_iterate_negative_rejected(self, owf):
        with pytest.raises(ConfigurationError):
            owf.iterate(b"v", -1)

    def test_non_bytes_input_rejected(self, owf):
        with pytest.raises(TypeError):
            owf("string")  # type: ignore[arg-type]

    def test_bytearray_accepted(self, owf):
        assert owf(bytearray(b"v")) == owf(b"v")

    def test_empty_label_rejected(self):
        with pytest.raises(ConfigurationError):
            OneWayFunction("")

    def test_zero_output_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            OneWayFunction("F", output_bits=0)

    def test_oversized_output_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            OneWayFunction("F", output_bits=512)

    def test_custom_width(self):
        f = OneWayFunction("F", output_bits=24)
        assert len(f(b"x")) == 3
        assert f.output_bytes == 3

    @given(st.binary(min_size=0, max_size=64))
    def test_output_stable_under_rerun(self, data):
        f = OneWayFunction("F")
        assert f(data) == f(data)

    @given(st.binary(min_size=1, max_size=32), st.integers(min_value=0, max_value=8))
    def test_iterate_matches_manual_fold(self, data, times):
        f = OneWayFunction("F")
        expected = data
        for _ in range(times):
            expected = f(expected)
        assert f.iterate(data, times) == expected


class TestStandardFunctions:
    def test_contains_full_family(self):
        fns = standard_functions()
        assert set(fns) == {"F", "F0", "F1", "F01", "H"}

    def test_family_members_are_independent(self):
        fns = standard_functions()
        outputs = {name: fn(b"input") for name, fn in fns.items()}
        assert len(set(outputs.values())) == len(outputs)

    def test_custom_width_propagates(self):
        fns = standard_functions(output_bits=40)
        assert all(fn.output_bits == 40 for fn in fns.values())
