"""Unit and property tests for the MAC / μMAC schemes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.mac import (
    DEFAULT_MAC_BITS,
    INDEX_BITS,
    MESSAGE_BITS,
    MICRO_MAC_BITS,
    MacScheme,
    MicroMacScheme,
)
from repro.errors import ConfigurationError

KEY = b"k" * 10
LOCAL = b"local-secret"


class TestPaperConstants:
    def test_mac_is_80_bits(self):
        assert DEFAULT_MAC_BITS == 80

    def test_micro_mac_is_24_bits(self):
        assert MICRO_MAC_BITS == 24

    def test_message_is_200_bits(self):
        assert MESSAGE_BITS == 200

    def test_index_is_32_bits(self):
        assert INDEX_BITS == 32

    def test_dap_record_is_56_bits(self):
        assert MICRO_MAC_BITS + INDEX_BITS == 56

    def test_classic_record_is_280_bits(self):
        assert MESSAGE_BITS + DEFAULT_MAC_BITS == 280


class TestMacScheme:
    def test_output_width(self, mac_scheme):
        assert len(mac_scheme.compute(KEY, b"msg")) == 10

    def test_verify_roundtrip(self, mac_scheme):
        mac = mac_scheme.compute(KEY, b"msg")
        assert mac_scheme.verify(KEY, b"msg", mac)

    def test_verify_rejects_wrong_message(self, mac_scheme):
        mac = mac_scheme.compute(KEY, b"msg")
        assert not mac_scheme.verify(KEY, b"other", mac)

    def test_verify_rejects_wrong_key(self, mac_scheme):
        mac = mac_scheme.compute(KEY, b"msg")
        assert not mac_scheme.verify(b"x" * 10, b"msg", mac)

    def test_verify_rejects_truncated_tag(self, mac_scheme):
        mac = mac_scheme.compute(KEY, b"msg")
        assert not mac_scheme.verify(KEY, b"msg", mac[:-1])

    def test_empty_key_rejected(self, mac_scheme):
        with pytest.raises(ConfigurationError):
            mac_scheme.compute(b"", b"msg")

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            MacScheme(mac_bits=0)
        with pytest.raises(ConfigurationError):
            MacScheme(mac_bits=300)

    def test_custom_width(self):
        scheme = MacScheme(mac_bits=32)
        assert len(scheme.compute(KEY, b"m")) == 4

    @given(st.binary(min_size=1, max_size=16), st.binary(max_size=64))
    def test_roundtrip_property(self, key, message):
        scheme = MacScheme()
        assert scheme.verify(key, message, scheme.compute(key, message))

    @given(st.binary(max_size=32), st.binary(max_size=32))
    def test_distinct_messages_distinct_macs(self, a, b):
        scheme = MacScheme()
        if a != b:
            assert scheme.compute(KEY, a) != scheme.compute(KEY, b)


class TestMicroMacScheme:
    def test_output_width(self, micro_scheme):
        assert len(micro_scheme.compute(LOCAL, b"\xab" * 10)) == 3

    def test_verify_roundtrip(self, micro_scheme):
        mac = b"\xab" * 10
        micro = micro_scheme.compute(LOCAL, mac)
        assert micro_scheme.verify(LOCAL, mac, micro)

    def test_local_key_matters(self, micro_scheme):
        mac = b"\xab" * 10
        assert micro_scheme.compute(LOCAL, mac) != micro_scheme.compute(b"other", mac)

    def test_empty_local_key_rejected(self, micro_scheme):
        with pytest.raises(ConfigurationError):
            micro_scheme.compute(b"", b"\xab" * 10)

    def test_micro_and_full_mac_schemes_are_independent(self, mac_scheme):
        """The μMAC of a MAC must not coincide with a truncated MAC of it."""
        micro = MicroMacScheme(micro_mac_bits=80)
        mac = mac_scheme.compute(KEY, b"m")
        assert micro.compute(KEY, mac) != mac_scheme.compute(KEY, mac)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroMacScheme(micro_mac_bits=0)

    @given(st.binary(min_size=1, max_size=16), st.binary(min_size=1, max_size=16))
    def test_rehash_deterministic(self, local, mac):
        scheme = MicroMacScheme()
        assert scheme.compute(local, mac) == scheme.compute(local, mac)
