"""ChainWalkCache and the kernel switch: identical bytes, fewer walks."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.kernels import (
    ChainWalkCache,
    hmac_midstate,
    kernels_disabled,
    kernels_enabled,
    set_kernels_enabled,
    sha256_midstate,
)
from repro.crypto.keychain import KeyChain, KeyChainAuthenticator
from repro.crypto.mac import MacScheme
from repro.crypto.onewayfn import OneWayFunction
from repro.errors import ConfigurationError

SEED = b"walk-cache-test-seed"


class TestKernelSwitch:
    def test_context_manager_restores(self):
        assert kernels_enabled()
        with kernels_disabled():
            assert not kernels_enabled()
        assert kernels_enabled()

    def test_set_returns_previous(self):
        previous = set_kernels_enabled(False)
        try:
            assert previous is True
            assert set_kernels_enabled(True) is False
        finally:
            set_kernels_enabled(True)

    def test_midstate_matches_naive_digest(self):
        function = OneWayFunction("F")
        value = b"\x17" * function.output_bytes
        with_kernels = function(value)
        with kernels_disabled():
            naive = function(value)
        assert with_kernels == naive

    def test_iterate_matches_across_switch(self):
        function = OneWayFunction("F")
        value = b"\x42" * function.output_bytes
        assert function.iterate(value, 17) == _naive_iterate(function, value, 17)

    def test_mac_matches_across_switch(self):
        scheme = MacScheme()
        key, message = b"k" * 10, b"payload"
        with_kernels = scheme.compute(key, message)
        with kernels_disabled():
            naive = scheme.compute(key, message)
        assert with_kernels == naive
        assert scheme.verify(key, message, with_kernels)

    def test_midstate_objects_are_shared_not_mutated(self):
        state = sha256_midstate(b"prefix|")
        before = state.copy().hexdigest()
        clone = state.copy()
        clone.update(b"junk")
        assert state.copy().hexdigest() == before
        hm = hmac_midstate(b"key", b"label")
        hm_before = hm.copy().hexdigest()
        hm_clone = hm.copy()
        hm_clone.update(b"junk")
        assert hm.copy().hexdigest() == hm_before


def _naive_iterate(function: OneWayFunction, value: bytes, times: int) -> bytes:
    with kernels_disabled():
        result = value
        for _ in range(times):
            result = function(result)
        return result


class TestChainWalkCache:
    def test_rejects_bad_bound(self):
        with pytest.raises(ConfigurationError):
            ChainWalkCache(OneWayFunction("F"), max_entries=0)

    def test_authenticator_rejects_mismatched_function(self):
        f, g = OneWayFunction("F"), OneWayFunction("G")
        chain = KeyChain(SEED, 4, f)
        with pytest.raises(ConfigurationError):
            KeyChainAuthenticator(chain.commitment, f, walk_cache=ChainWalkCache(g))

    def test_hit_on_repeat(self):
        function = OneWayFunction("F")
        cache = ChainWalkCache(function)
        value = b"\x11" * function.output_bytes
        first = cache.iterate(value, 9)
        second = cache.iterate(value, 9)
        assert first == second == function.iterate(value, 9)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_identity_and_disabled_bypass(self):
        function = OneWayFunction("F")
        cache = ChainWalkCache(function)
        value = b"\x22" * function.output_bytes
        assert cache.iterate(value, 0) == value
        with kernels_disabled():
            cache.iterate(value, 5)
        assert len(cache) == 0 and cache.misses == 0

    def test_lru_bound(self):
        function = OneWayFunction("F")
        cache = ChainWalkCache(function, max_entries=4)
        for i in range(10):
            cache.iterate(bytes([i]) * function.output_bytes, 3)
        assert len(cache) == 4

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_cached_authenticator_equals_uncached(self, seed):
        """Random disclosure scripts — genuine keys across loss gaps,
        forged keys, replays — produce identical accept/reject decisions
        and identical anchors with and without the walk cache."""
        rng = random.Random(seed)
        function = OneWayFunction("F")
        chain = KeyChain(SEED, 60, function)
        plain = KeyChainAuthenticator(chain.commitment, function)
        cached = KeyChainAuthenticator(
            chain.commitment, function, walk_cache=ChainWalkCache(function)
        )
        script = []
        index = 0
        for _ in range(30):
            roll = rng.random()
            if roll < 0.5 and index < 60:
                index += rng.randint(1, min(5, 60 - index))
                script.append((index, chain.key(index)))
            elif roll < 0.8 and script:
                script.append(rng.choice(script))  # replay
            else:
                forged_index = rng.randint(1, 60)
                forged = bytes(rng.getrandbits(8) for _ in range(function.output_bytes))
                script.append((forged_index, forged))
        for disclosure_index, key in script:
            assert plain.authenticate(key, disclosure_index) == cached.authenticate(
                key, disclosure_index
            )
            assert plain.trusted_index == cached.trusted_index
            assert plain.trusted_key == cached.trusted_key

    def test_duplicate_flood_is_one_walk(self):
        """The DoS shape: the same forged disclosure replayed many times
        costs the cached receiver exactly one back-walk."""
        function = OneWayFunction("F")
        chain = KeyChain(SEED, 65, function)
        cache = ChainWalkCache(function)
        authenticator = KeyChainAuthenticator(
            chain.commitment, function, walk_cache=cache
        )
        forged = bytes(b ^ 0xA5 for b in chain.key(64))
        for _ in range(50):
            assert not authenticator.authenticate(forged, 64)
        assert cache.misses == 1
        assert cache.hits == 49


class TestVerifyMany:
    def test_matches_per_pair_verify(self):
        scheme = MacScheme()
        key = b"batch-key"
        pairs = []
        for i in range(20):
            message = b"m%03d" % i
            mac = scheme.compute(key, message)
            if i % 3 == 0:
                mac = bytes(b ^ 0xFF for b in mac)  # corrupt every third
            pairs.append((message, mac))
        expected = [scheme.verify(key, m, t) for m, t in pairs]
        assert scheme.verify_many(key, pairs) == expected
        with kernels_disabled():
            assert scheme.verify_many(key, pairs) == expected

    def test_empty_batch_and_bad_key(self):
        scheme = MacScheme()
        assert scheme.verify_many(b"k", []) == []
        with pytest.raises(ConfigurationError):
            scheme.verify_many(b"", [(b"m", b"t")])
