"""Golden-value regression tests for the crypto substrate.

These pin exact outputs so a refactor cannot silently change the
protocol: every buffered μMAC, every chain key, every CDM MAC in every
recorded experiment depends on these bytes. If one of these tests
fails, the change is wire-breaking — bump it consciously.
"""

from __future__ import annotations

from repro.crypto.keychain import KeyChain, derive_seed_key
from repro.crypto.mac import MacScheme, MicroMacScheme
from repro.crypto.onewayfn import OneWayFunction, standard_functions


class TestOneWayFunctionGolden:
    def test_f_of_empty(self):
        assert OneWayFunction("F")(b"").hex() == "0b11f3f01f5506c4057b"

    def test_f_of_known_input(self):
        assert OneWayFunction("F")(b"key-material").hex() == "97b36872a0e631023c67"

    def test_family_separation_golden(self):
        outputs = {
            name: fn(b"x").hex() for name, fn in standard_functions().items()
        }
        assert outputs == {
            "F": "fa7c67a3564d49f551e9",
            "F0": "516f562940b4cfeddd5d",
            "F1": "59aba4e91175b0496e59",
            "F01": "4ebae94f8c0508686cca",
            "H": "7914b8a4dd58732eae6f",
        }


class TestKeyChainGolden:
    def test_seed_derivation(self):
        assert derive_seed_key(b"seed", "chain").hex() == "b274b9c1fced97351bf5"

    def test_chain_commitment(self):
        chain = KeyChain(b"golden-seed", length=10)
        assert chain.commitment.hex() == "735e124262868d6e78a7"

    def test_chain_midpoint_key(self):
        chain = KeyChain(b"golden-seed", length=10)
        assert chain.key(5).hex() == "dd9b6e1547ccfdb3ed68"


class TestMacGolden:
    def test_mac_80_bit(self):
        mac = MacScheme().compute(b"k" * 10, b"message")
        assert mac.hex() == "ed45e57ff0ebd6826d6e"

    def test_micro_mac_24_bit(self):
        micro = MicroMacScheme().compute(b"local", b"\xaa" * 10)
        assert micro.hex() == "31c250"
