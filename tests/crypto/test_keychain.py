"""Unit and property tests for one-way key chains."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keychain import (
    KeyChain,
    KeyChainAuthenticator,
    TwoLevelKeyChain,
    derive_seed_key,
    recover_low_chain_key,
)
from repro.crypto.onewayfn import OneWayFunction, standard_functions
from repro.errors import (
    ConfigurationError,
    KeyChainError,
    KeyChainExhaustedError,
    KeyVerificationError,
)

SEED = b"chain-test-seed"


class TestDeriveSeedKey:
    def test_deterministic(self):
        assert derive_seed_key(SEED, "a") == derive_seed_key(SEED, "a")

    def test_label_separates(self):
        assert derive_seed_key(SEED, "a") != derive_seed_key(SEED, "b")

    def test_width(self):
        assert len(derive_seed_key(SEED, "a", key_bits=40)) == 5

    def test_empty_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_seed_key(b"", "a")


class TestKeyChain:
    def test_chain_relation_holds_everywhere(self):
        chain = KeyChain(SEED, length=20)
        for i in range(20):
            assert chain.key(i) == chain.function(chain.key(i + 1))

    def test_commitment_is_key_zero(self):
        chain = KeyChain(SEED, length=5)
        assert chain.commitment == chain.key(0)

    def test_length(self):
        chain = KeyChain(SEED, length=7)
        assert len(chain) == 7
        assert chain.length == 7

    def test_same_seed_same_chain(self):
        a = KeyChain(SEED, length=5)
        b = KeyChain(SEED, length=5)
        assert a.key(3) == b.key(3)

    def test_different_seeds_differ(self):
        a = KeyChain(SEED, length=5)
        b = KeyChain(b"other", length=5)
        assert a.key(3) != b.key(3)

    def test_label_separates_chains_from_one_seed(self):
        a = KeyChain(SEED, length=5, label="one")
        b = KeyChain(SEED, length=5, label="two")
        assert a.key(1) != b.key(1)

    def test_negative_index_rejected(self):
        with pytest.raises(KeyChainError):
            KeyChain(SEED, length=5).key(-1)

    def test_exhausted_index_rejected(self):
        with pytest.raises(KeyChainExhaustedError):
            KeyChain(SEED, length=5).key(6)

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyChain(SEED, length=0)

    def test_verify_true_across_gap(self):
        chain = KeyChain(SEED, length=10)
        assert chain.verify(chain.key(8), 8, chain.key(3), 3)

    def test_verify_false_for_wrong_key(self):
        chain = KeyChain(SEED, length=10)
        assert not chain.verify(b"\x00" * 10, 8, chain.key(3), 3)

    def test_verify_backwards_rejected(self):
        chain = KeyChain(SEED, length=10)
        with pytest.raises(KeyChainError):
            chain.verify(chain.key(2), 2, chain.key(5), 5)

    def test_derive_walks_back(self):
        chain = KeyChain(SEED, length=10)
        assert chain.derive(chain.key(9), 4) == chain.key(5)

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=30))
    @settings(max_examples=25)
    def test_any_key_derives_commitment(self, length, index):
        index = min(index, length)
        chain = KeyChain(SEED, length=length)
        assert chain.function.iterate(chain.key(index), index) == chain.commitment


class TestKeyChainAuthenticator:
    @pytest.fixture
    def chain(self):
        return KeyChain(SEED, length=20)

    @pytest.fixture
    def auth(self, chain):
        return KeyChainAuthenticator(chain.commitment, chain.function)

    def test_initial_anchor_is_commitment(self, chain, auth):
        assert auth.trusted_index == 0
        assert auth.trusted_key == chain.commitment

    def test_sequential_disclosures(self, chain, auth):
        for i in range(1, 6):
            assert auth.authenticate(chain.key(i), i)
        assert auth.trusted_index == 5

    def test_gap_tolerated(self, chain, auth):
        assert auth.authenticate(chain.key(7), 7)
        assert auth.trusted_index == 7

    def test_forged_key_rejected(self, auth):
        assert not auth.authenticate(b"\xde\xad" * 5, 3)
        assert auth.trusted_index == 0

    def test_forged_rejection_keeps_anchor(self, chain, auth):
        auth.authenticate(chain.key(4), 4)
        assert not auth.authenticate(b"\x00" * 10, 9)
        assert auth.trusted_index == 4
        assert auth.trusted_key == chain.key(4)

    def test_redisclosure_idempotent(self, chain, auth):
        assert auth.authenticate(chain.key(3), 3)
        assert auth.authenticate(chain.key(3), 3)
        assert auth.trusted_index == 3

    def test_older_disclosure_rejected(self, chain, auth):
        auth.authenticate(chain.key(5), 5)
        assert not auth.authenticate(chain.key(2), 2)

    def test_max_gap_enforced(self, chain):
        auth = KeyChainAuthenticator(chain.commitment, chain.function, max_gap=3)
        with pytest.raises(KeyVerificationError):
            auth.authenticate(chain.key(10), 10)

    def test_max_gap_allows_within_bound(self, chain):
        auth = KeyChainAuthenticator(chain.commitment, chain.function, max_gap=3)
        assert auth.authenticate(chain.key(3), 3)

    def test_derive_older(self, chain, auth):
        auth.authenticate(chain.key(9), 9)
        assert auth.derive_older(4) == chain.key(4)

    def test_derive_newer_rejected(self, chain, auth):
        auth.authenticate(chain.key(3), 3)
        with pytest.raises(KeyChainError):
            auth.derive_older(4)

    def test_empty_commitment_rejected(self, chain):
        with pytest.raises(ConfigurationError):
            KeyChainAuthenticator(b"", chain.function)

    @given(st.lists(st.integers(min_value=1, max_value=15), min_size=1, max_size=10))
    @settings(max_examples=30)
    def test_random_disclosure_orders_never_corrupt_anchor(self, indices):
        chain = KeyChain(SEED, length=15)
        auth = KeyChainAuthenticator(chain.commitment, chain.function)
        highest = 0
        for i in indices:
            ok = auth.authenticate(chain.key(i), i)
            assert ok == (i >= highest)
            highest = max(highest, i)
            assert auth.trusted_key == chain.key(auth.trusted_index)


class TestTwoLevelKeyChain:
    @pytest.fixture
    def fns(self):
        return standard_functions()

    def test_low_chain_relation(self, fns):
        chain = TwoLevelKeyChain(SEED, high_length=5, low_length=6, functions=fns)
        for j in range(6):
            assert chain.low_key(2, j) == fns["F1"](chain.low_key(2, j + 1))

    def test_original_wiring_anchor(self, fns):
        chain = TwoLevelKeyChain(SEED, 5, 4, eftp_wiring=False, functions=fns)
        assert chain.low_key(2, 4) == fns["F01"](chain.high_key(3))

    def test_eftp_wiring_anchor(self, fns):
        chain = TwoLevelKeyChain(SEED, 5, 4, eftp_wiring=True, functions=fns)
        assert chain.low_key(2, 4) == fns["F01"](chain.high_key(2))

    def test_wirings_produce_different_low_chains(self, fns):
        a = TwoLevelKeyChain(SEED, 5, 4, eftp_wiring=False, functions=fns)
        b = TwoLevelKeyChain(SEED, 5, 4, eftp_wiring=True, functions=fns)
        assert a.low_key(2, 1) != b.low_key(2, 1)

    def test_last_low_chain_needs_next_high_key_original(self, fns):
        chain = TwoLevelKeyChain(SEED, 5, 4, eftp_wiring=False, functions=fns)
        with pytest.raises(KeyChainExhaustedError):
            chain.low_commitment(5)

    def test_last_low_chain_available_under_eftp(self, fns):
        chain = TwoLevelKeyChain(SEED, 5, 4, eftp_wiring=True, functions=fns)
        assert chain.low_commitment(5)

    def test_low_index_bounds(self, fns):
        chain = TwoLevelKeyChain(SEED, 5, 4, functions=fns)
        with pytest.raises(KeyChainError):
            chain.low_key(2, 5)
        with pytest.raises(KeyChainError):
            chain.low_key(2, -1)

    def test_high_interval_bounds(self, fns):
        chain = TwoLevelKeyChain(SEED, 5, 4, functions=fns)
        with pytest.raises(KeyChainError):
            chain.low_key(0, 1)
        with pytest.raises(KeyChainError):
            chain.low_key(6, 1)

    def test_recover_low_commitment_original(self, fns):
        chain = TwoLevelKeyChain(SEED, 6, 4, eftp_wiring=False, functions=fns)
        recovered = chain.recover_low_commitment(2, chain.high_key(5), 5)
        assert recovered == chain.low_commitment(2)

    def test_recover_low_commitment_eftp(self, fns):
        chain = TwoLevelKeyChain(SEED, 6, 4, eftp_wiring=True, functions=fns)
        recovered = chain.recover_low_commitment(2, chain.high_key(5), 5)
        assert recovered == chain.low_commitment(2)

    def test_recovery_latency_difference(self, fns):
        """EFTP recovers chain i from K_i; the original wiring needs K_{i+1}."""
        original = TwoLevelKeyChain(SEED, 6, 4, eftp_wiring=False, functions=fns)
        eftp = TwoLevelKeyChain(SEED, 6, 4, eftp_wiring=True, functions=fns)
        assert eftp.recover_low_commitment(3, eftp.high_key(3), 3)
        with pytest.raises(KeyChainError):
            original.recover_low_commitment(3, original.high_key(3), 3)

    def test_bad_dimensions_rejected(self, fns):
        with pytest.raises(ConfigurationError):
            TwoLevelKeyChain(SEED, 0, 4, functions=fns)
        with pytest.raises(ConfigurationError):
            TwoLevelKeyChain(SEED, 4, 0, functions=fns)


class TestRecoverLowChainKey:
    @pytest.fixture
    def fns(self):
        return standard_functions()

    def test_recovers_arbitrary_sub_key(self, fns):
        chain = TwoLevelKeyChain(SEED, 6, 5, eftp_wiring=True, functions=fns)
        got = recover_low_chain_key(
            chain.high_key(4), 4, 3, 2, 5,
            fns["F0"], fns["F1"], fns["F01"], eftp_wiring=True,
        )
        assert got == chain.low_key(3, 2)

    def test_anchor_in_future_rejected(self, fns):
        chain = TwoLevelKeyChain(SEED, 6, 5, functions=fns)
        with pytest.raises(KeyChainError):
            recover_low_chain_key(
                chain.high_key(2), 2, 3, 0, 5,
                fns["F0"], fns["F1"], fns["F01"], eftp_wiring=False,
            )

    def test_bad_indices_rejected(self, fns):
        with pytest.raises(KeyChainError):
            recover_low_chain_key(
                b"\x00" * 10, 5, 0, 0, 5,
                fns["F0"], fns["F1"], fns["F01"], eftp_wiring=False,
            )
        with pytest.raises(KeyChainError):
            recover_low_chain_key(
                b"\x00" * 10, 5, 2, 9, 5,
                fns["F0"], fns["F1"], fns["F01"], eftp_wiring=False,
            )
