"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto import MacScheme, MicroMacScheme, OneWayFunction, standard_functions
from repro.timesync import IntervalSchedule, LooseTimeSync, SecurityCondition

SEED = b"test-seed"


@pytest.fixture
def functions():
    """The standard one-way function family."""
    return standard_functions()


@pytest.fixture
def owf():
    """A fresh 80-bit one-way function."""
    return OneWayFunction("F")


@pytest.fixture
def mac_scheme():
    """The 80-bit MAC scheme."""
    return MacScheme()


@pytest.fixture
def micro_scheme():
    """The 24-bit μMAC scheme."""
    return MicroMacScheme()


@pytest.fixture
def schedule():
    """A unit-duration schedule starting at t=0."""
    return IntervalSchedule(start=0.0, duration=1.0)


@pytest.fixture
def sync():
    """A tight loose-sync bound (10 ms)."""
    return LooseTimeSync(max_offset=0.01)


@pytest.fixture
def condition(schedule, sync):
    """Security condition with disclosure delay 1."""
    return SecurityCondition(schedule, sync, disclosure_delay=1)


@pytest.fixture
def rng():
    """A deterministic RNG."""
    return random.Random(12345)
