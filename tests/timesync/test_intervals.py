"""Unit tests for interval schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.timesync.intervals import IntervalSchedule, TwoLevelSchedule


class TestIntervalSchedule:
    def test_before_start_is_zero(self, schedule):
        assert schedule.index_at(-0.5) == 0

    def test_first_interval(self, schedule):
        assert schedule.index_at(0.0) == 1
        assert schedule.index_at(0.999) == 1

    def test_boundary_belongs_to_next(self, schedule):
        assert schedule.index_at(1.0) == 2

    def test_start_and_end(self, schedule):
        assert schedule.start_of(3) == 2.0
        assert schedule.end_of(3) == 3.0

    def test_contains(self, schedule):
        assert schedule.contains(2, 1.5)
        assert not schedule.contains(2, 2.0)
        assert not schedule.contains(2, 0.5)

    def test_nonzero_start(self):
        sched = IntervalSchedule(start=10.0, duration=2.0)
        assert sched.index_at(10.0) == 1
        assert sched.index_at(13.9) == 2
        assert sched.start_of(2) == 12.0

    def test_finite_count_clamps(self):
        sched = IntervalSchedule(0.0, 1.0, count=5)
        assert sched.index_at(100.0) == 5

    def test_finite_count_bounds_checked(self):
        sched = IntervalSchedule(0.0, 1.0, count=5)
        with pytest.raises(ConfigurationError):
            sched.start_of(6)

    def test_index_below_one_rejected(self, schedule):
        with pytest.raises(ConfigurationError):
            schedule.start_of(0)

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            IntervalSchedule(0.0, 0.0)

    def test_bad_count_rejected(self):
        with pytest.raises(ConfigurationError):
            IntervalSchedule(0.0, 1.0, count=0)

    @given(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=50)
    def test_index_at_start_of_is_identity(self, duration, index):
        sched = IntervalSchedule(0.0, duration)
        # Float rounding may land a boundary on either side; mid-interval
        # must be exact.
        mid = sched.start_of(index) + duration / 2
        assert sched.index_at(mid) == index


class TestTwoLevelSchedule:
    @pytest.fixture
    def two_level(self):
        return TwoLevelSchedule(start=0.0, low_duration=1.0, low_per_high=4)

    def test_high_duration(self, two_level):
        assert two_level.high_duration == 4.0

    def test_split_and_flatten_roundtrip(self, two_level):
        for flat in range(1, 25):
            high, sub = two_level.split(flat)
            assert two_level.flatten(high, sub) == flat

    def test_split_values(self, two_level):
        assert two_level.split(1) == (1, 1)
        assert two_level.split(4) == (1, 4)
        assert two_level.split(5) == (2, 1)

    def test_position_at(self, two_level):
        assert two_level.position_at(-1.0) == (0, 0)
        assert two_level.position_at(0.5) == (1, 1)
        assert two_level.position_at(4.5) == (2, 1)
        assert two_level.position_at(7.5) == (2, 4)

    def test_views_consistent(self, two_level):
        assert two_level.high_schedule.duration == two_level.high_duration
        assert two_level.low_schedule.duration == 1.0

    def test_finite_count_propagates(self):
        sched = TwoLevelSchedule(0.0, 1.0, 4, high_count=3)
        assert sched.low_schedule.count == 12
        assert sched.high_schedule.count == 3

    def test_bad_sub_rejected(self, two_level):
        with pytest.raises(ConfigurationError):
            two_level.flatten(1, 5)
        with pytest.raises(ConfigurationError):
            two_level.flatten(1, 0)

    def test_bad_flat_rejected(self, two_level):
        with pytest.raises(ConfigurationError):
            two_level.split(0)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoLevelSchedule(0.0, 0.0, 4)
        with pytest.raises(ConfigurationError):
            TwoLevelSchedule(0.0, 1.0, 0)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=500))
    @settings(max_examples=50)
    def test_roundtrip_property(self, low_per_high, flat):
        sched = TwoLevelSchedule(0.0, 0.5, low_per_high)
        high, sub = sched.split(flat)
        assert 1 <= sub <= low_per_high
        assert sched.flatten(high, sub) == flat
