"""Unit tests for loose synchronisation and the security condition."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SecurityConditionError
from repro.timesync.intervals import IntervalSchedule
from repro.timesync.sync import LooseTimeSync, SecurityCondition


class TestLooseTimeSync:
    def test_upper_bound(self):
        sync = LooseTimeSync(0.5)
        assert sync.sender_time_upper_bound(10.0) == 10.5

    def test_zero_offset_allowed(self):
        assert LooseTimeSync(0.0).sender_time_upper_bound(1.0) == 1.0

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            LooseTimeSync(-0.1)

    def test_interval_upper_bound(self, schedule):
        sync = LooseTimeSync(0.5)
        # At receiver time 0.6 the sender might already be at 1.1 ->
        # interval 2.
        assert sync.sender_interval_upper_bound(0.6, schedule) == 2

    def test_interval_upper_bound_within(self, schedule):
        sync = LooseTimeSync(0.1)
        assert sync.sender_interval_upper_bound(0.5, schedule) == 1


class TestSecurityCondition:
    @pytest.fixture
    def cond(self, schedule):
        return SecurityCondition(schedule, LooseTimeSync(0.01), disclosure_delay=1)

    def test_fresh_packet_safe(self, cond):
        # Packet of interval 3 received during interval 3: K_3 disclosed
        # in interval 4, still secret.
        assert cond.is_safe(3, 2.5)

    def test_stale_packet_unsafe(self, cond):
        # Packet of interval 1 received during interval 3: K_1 was
        # disclosed in interval 2.
        assert not cond.is_safe(1, 2.5)

    def test_disclosure_boundary_unsafe(self, cond):
        # Received during interval i+d: the key is being disclosed now.
        assert not cond.is_safe(2, 2.5)

    def test_sync_slack_matters(self, schedule):
        tight = SecurityCondition(schedule, LooseTimeSync(0.0), 1)
        loose = SecurityCondition(schedule, LooseTimeSync(0.5), 1)
        # Just before the boundary: safe under perfect sync, unsafe when
        # the sender may already be past it.
        assert tight.is_safe(2, 1.9)
        assert not loose.is_safe(2, 1.9)

    def test_larger_delay_extends_safety(self, schedule):
        d1 = SecurityCondition(schedule, LooseTimeSync(0.01), 1)
        d3 = SecurityCondition(schedule, LooseTimeSync(0.01), 3)
        assert not d1.is_safe(2, 2.5)
        assert d3.is_safe(2, 2.5)

    def test_nonpositive_interval_unsafe(self, cond):
        assert not cond.is_safe(0, 0.5)
        assert not cond.is_safe(-1, 0.5)

    def test_paper_literal_is_permissive_at_boundary(self, schedule):
        strict = SecurityCondition(schedule, LooseTimeSync(0.0), 1)
        literal = SecurityCondition(
            schedule, LooseTimeSync(0.0), 1, paper_literal=True
        )
        # Receiver in interval 3, packet from interval 2, d=1: the key is
        # being disclosed *now*. The textbook condition rejects; the
        # paper's published inequality (discard only when i + d < x)
        # accepts.
        assert not strict.is_safe(2, 2.5)
        assert literal.is_safe(2, 2.5)

    def test_paper_literal_still_rejects_clearly_stale(self, schedule):
        literal = SecurityCondition(
            schedule, LooseTimeSync(0.0), 1, paper_literal=True
        )
        assert not literal.is_safe(1, 3.5)

    def test_require_safe_raises(self, cond):
        with pytest.raises(SecurityConditionError):
            cond.require_safe(1, 5.0)

    def test_require_safe_passes(self, cond):
        cond.require_safe(6, 5.0)

    def test_disclosure_interval(self, cond):
        assert cond.disclosure_interval(4) == 5

    def test_disclosure_interval_bad_input(self, cond):
        with pytest.raises(ConfigurationError):
            cond.disclosure_interval(0)

    def test_bad_delay_rejected(self, schedule):
        with pytest.raises(ConfigurationError):
            SecurityCondition(schedule, LooseTimeSync(0.0), disclosure_delay=0)


class TestPlausibility:
    @pytest.fixture
    def cond(self, schedule):
        return SecurityCondition(schedule, LooseTimeSync(0.01), disclosure_delay=1)

    def test_current_interval_plausible(self, cond):
        assert cond.is_plausible(3, 2.5)

    def test_far_future_interval_implausible(self, cond):
        """An attacker claiming interval 10^6 cannot allocate buffers."""
        assert not cond.is_plausible(10 ** 6, 2.5)

    def test_next_interval_implausible_within_sync_bound(self, cond):
        assert not cond.is_plausible(4, 2.5)

    def test_sync_slack_extends_the_window(self, schedule):
        loose = SecurityCondition(schedule, LooseTimeSync(0.6), 1)
        # receiver at 2.5, sender may be at 3.1 -> interval 4 plausible
        assert loose.is_plausible(4, 2.5)

    def test_nonpositive_interval_implausible(self, cond):
        assert not cond.is_plausible(0, 2.5)

    def test_accepts_requires_both(self, cond):
        assert cond.accepts(3, 2.5)  # current: plausible and safe
        assert not cond.accepts(1, 2.5)  # past: plausible but unsafe
        assert not cond.accepts(9, 2.5)  # future: safe but implausible
