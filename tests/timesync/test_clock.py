"""Unit tests for simulation clocks."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.timesync.clock import DriftingClock, SimClock


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(5.0).now() == 5.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_zero_allowed(self):
        clock = SimClock(1.0)
        assert clock.advance(0.0) == 1.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock().advance(-1.0)

    def test_set_forward(self):
        clock = SimClock()
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_set_backwards_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ConfigurationError):
            clock.set(4.0)

    def test_set_same_time_allowed(self):
        clock = SimClock(5.0)
        assert clock.set(5.0) == 5.0


class TestDriftingClock:
    def test_zero_skew_tracks_master(self):
        master = SimClock(3.0)
        assert DriftingClock(master).now() == 3.0

    def test_offset_applied(self):
        master = SimClock(10.0)
        assert DriftingClock(master, offset=0.5).now() == 10.5

    def test_negative_offset(self):
        master = SimClock(10.0)
        assert DriftingClock(master, offset=-0.5).now() == 9.5

    def test_drift_grows_with_time(self):
        master = SimClock(0.0)
        clock = DriftingClock(master, drift_rate=1e-3)
        master.set(1000.0)
        assert clock.now() == pytest.approx(1001.0)

    def test_error_at(self):
        clock = DriftingClock(SimClock(), offset=0.2, drift_rate=1e-4)
        assert clock.error_at(100.0) == pytest.approx(0.21)

    def test_extreme_negative_drift_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftingClock(SimClock(), drift_rate=-1.0)

    def test_drift_and_offset_compose(self):
        master = SimClock(100.0)
        clock = DriftingClock(master, offset=1.0, drift_rate=0.01)
        assert clock.now() == pytest.approx(100.0 * 1.01 + 1.0)
