"""Co-evolution: game-guided defenders against a game-playing attacker.

The paper's full story in one closed loop — the attacker's flooding
probability follows its replicator equation while the defenders
estimate the attack level and re-run Algorithm 3. Both sides adapt;
the measured behaviour should approach the game's predictions.
"""

from __future__ import annotations

import random

import pytest

from repro.game.adaptive import AdaptiveDefense, AttackEstimator
from repro.game.ess import realized_ess
from repro.game.parameters import paper_parameters
from repro.protocols.dap import DapReceiver, DapSender
from repro.sim.adaptive import AdaptiveReceiverNode
from repro.sim.attacker import GameAwareAttacker, announce_forgery_factory
from repro.sim.events import Simulator
from repro.sim.medium import BroadcastMedium
from repro.sim.nodes import SenderNode
from repro.timesync.intervals import IntervalSchedule
from repro.timesync.sync import LooseTimeSync, SecurityCondition

SEED = b"coevolution-seed"
INTERVALS = 120


def run_coevolution(m_game: int, seed: int = 5):
    """Both sides play the m = ``m_game`` game for INTERVALS epochs."""
    params = paper_parameters(p=0.8, m=m_game)
    simulator = Simulator()
    medium = BroadcastMedium(simulator, rng=random.Random(seed))
    schedule = IntervalSchedule(0.0, 1.0)
    condition = SecurityCondition(schedule, LooseTimeSync(0.01), 1)
    sender = DapSender(SEED, INTERVALS + 1, announce_copies=5)

    receiver = DapReceiver(
        sender.chain.commitment, condition, b"local", buffers=m_game,
        rng=random.Random(seed + 1),
    )
    policy = AdaptiveDefense(
        paper_parameters(p=0.5, m=1), AttackEstimator(alpha=0.25, initial=0.5)
    )
    node = AdaptiveReceiverNode("defender", simulator, receiver, policy)
    node.attach(medium)
    node.schedule_reconfiguration(schedule, INTERVALS, every=5)

    attacker = GameAwareAttacker(
        simulator,
        medium,
        schedule,
        announce_forgery_factory(),
        params=params,
        defender_share=1.0,  # the fleet visibly defends
        authentic_copies_per_interval=5,
        intervals=INTERVALS,
        steps_per_interval=20,
        rng=random.Random(seed + 2),
    )
    attacker.start()
    SenderNode("sender", simulator, medium, sender, schedule, INTERVALS).start()
    simulator.run()
    return params, node, attacker, receiver


class TestCoevolution:
    def test_attacker_share_converges_to_game_prediction(self):
        """At m = 14 against full defense the attacker's ESS share is
        Y' = 0.55; the simulated attacker's replicator state reaches it."""
        params, _node, attacker, _receiver = run_coevolution(m_game=14)
        point, _ = realized_ess(params)
        assert attacker.attack_share == pytest.approx(point.y, abs=0.03)

    def test_defenders_track_the_attackers_intensity(self):
        """The fleet's estimate settles near the effective attack level:
        the attacker floods at p=0.8 a fraction Y' of the time."""
        _params, node, attacker, _receiver = run_coevolution(m_game=14)
        attack_rate = sum(attacker.attack_decisions) / len(attacker.attack_decisions)
        effective_p = 0.8 * attack_rate  # expected forged share over time
        final_estimate = node.history[-1].estimated_p
        assert final_estimate == pytest.approx(effective_p, abs=0.2)

    def test_intermittent_attacker_costs_less_than_constant(self):
        """The game's behavioural prediction: a rational attacker at the
        (1, Y') equilibrium attacks a fraction of the time — and the
        defenders see fewer losses than under a constant flood."""
        _params, node, attacker, receiver = run_coevolution(m_game=14)
        assert 0.2 < sum(attacker.attack_decisions) / len(
            attacker.attack_decisions
        ) < 0.9
        assert receiver.stats.forged_accepted == 0
        assert receiver.stats.authenticated > INTERVALS * 0.5

    def test_small_m_game_keeps_attacker_fully_aggressive(self):
        """At m = 5 the ESS is (1,1): the attacker should flood nearly
        every interval."""
        _params, _node, attacker, _receiver = run_coevolution(m_game=5)
        rate = sum(attacker.attack_decisions) / len(attacker.attack_decisions)
        assert rate > 0.9

    def test_security_invariant(self):
        for m in (5, 14):
            _p, _n, _a, receiver = run_coevolution(m_game=m, seed=11)
            assert receiver.stats.forged_accepted == 0
