"""Adversarial robustness: fuzzing and attack strategies beyond flooding.

The flooding attacker is the paper's threat model; a credible
implementation must also survive *malformed* and *crafted* traffic:
random bytes in every field, replays, key reuse across protocols, and
μMAC collision hunting. Receivers must never crash and never
authenticate anything not originated by the sender (modulo the
explicitly probabilistic μMAC width, demonstrated at the end).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocols.base import AuthOutcome
from repro.protocols.dap import DapReceiver, DapSender
from repro.protocols.mu_tesla import MuTeslaReceiver, MuTeslaSender
from repro.protocols.packets import (
    FORGED,
    KeyDisclosurePacket,
    MacAnnouncePacket,
    MessageKeyPacket,
    MuTeslaDataPacket,
)
from repro.timesync.intervals import IntervalSchedule
from repro.timesync.sync import LooseTimeSync, SecurityCondition

SEED = b"adversarial-seed"
LOCAL = b"local-key"


def make_condition(delay=1):
    return SecurityCondition(
        IntervalSchedule(0.0, 1.0), LooseTimeSync(0.01), disclosure_delay=delay
    )


# Strategies for arbitrary protocol-field values.
some_bytes = st.binary(min_size=0, max_size=40)
some_index = st.integers(min_value=-5, max_value=10 ** 6)
some_time = st.floats(min_value=-10.0, max_value=10 ** 5, allow_nan=False)


class TestDapFuzzing:
    @given(some_index, some_bytes, some_time)
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_announces_never_crash_or_authenticate(
        self, index, mac, now
    ):
        sender = DapSender(SEED, 10)
        receiver = DapReceiver(sender.chain.commitment, make_condition(), LOCAL)
        packet = MacAnnouncePacket(index, mac, provenance=FORGED)
        events = receiver.receive(packet, max(now, 0.0))
        assert all(e.outcome is not AuthOutcome.AUTHENTICATED for e in events)
        assert receiver.stats.forged_accepted == 0

    @given(some_index, some_bytes, some_bytes)
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_reveals_never_authenticate(self, index, message, key):
        sender = DapSender(SEED, 10)
        receiver = DapReceiver(sender.chain.commitment, make_condition(), LOCAL)
        # Prime with an authentic announce so there is something to match.
        for packet in sender.packets_for_interval(1):
            receiver.receive(packet, 0.5)
        if key == b"":
            return  # wire layer would reject an empty key field
        forged = MessageKeyPacket(index, message, key, provenance=FORGED)
        receiver.receive(forged, 1.5)
        assert receiver.stats.forged_accepted == 0

    @given(st.lists(st.tuples(some_index, some_bytes), max_size=20))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_interleaved_garbage_does_not_block_authentic_traffic(self, garbage):
        sender = DapSender(SEED, 12, announce_copies=3)
        receiver = DapReceiver(
            sender.chain.commitment, make_condition(), LOCAL, buffers=8,
            rng=random.Random(1),
        )
        rng = random.Random(7)
        for interval in range(1, 11):
            now = interval - 0.5
            for index, mac in garbage:
                receiver.receive(
                    MacAnnouncePacket(abs(index) % 12 + 1, mac, provenance=FORGED),
                    now,
                )
            for packet in sender.packets_for_interval(interval):
                receiver.receive(packet, now)
        assert receiver.stats.forged_accepted == 0
        # with 8 buffers and <= 20 garbage copies, authentic records
        # survive often; at least some intervals must authenticate.
        assert receiver.stats.authenticated >= 5


class TestMuTeslaFuzzing:
    @given(some_index, some_bytes, some_bytes, some_time)
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_data_packets(self, index, message, mac, now):
        sender = MuTeslaSender(SEED, 10)
        receiver = MuTeslaReceiver(sender.chain.commitment, make_condition(2))
        packet = MuTeslaDataPacket(index, message, mac, provenance=FORGED)
        receiver.receive(packet, max(now, 0.0))
        assert receiver.stats.forged_accepted == 0

    @given(some_index, some_bytes)
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_disclosures_never_corrupt_the_chain(self, index, key):
        sender = MuTeslaSender(SEED, 10)
        receiver = MuTeslaReceiver(sender.chain.commitment, make_condition(2))
        receiver.receive(
            KeyDisclosurePacket(index, key, provenance=FORGED), 5.5
        )
        # Authentic traffic must still verify afterwards.
        for interval in range(1, 9):
            for packet in sender.packets_for_interval(interval):
                receiver.receive(packet, interval - 0.5 + 5.0)
        # (packets delivered late look unsafe; drive again on time)
        receiver2 = MuTeslaReceiver(sender.chain.commitment, make_condition(2))
        receiver2.receive(KeyDisclosurePacket(index, key, provenance=FORGED), 0.5)
        for interval in range(1, 9):
            for packet in sender.packets_for_interval(interval):
                receiver2.receive(packet, interval - 0.5)
        assert receiver2.stats.authenticated >= 6
        assert receiver2.stats.forged_accepted == 0


class TestComputationalDosHardening:
    def test_huge_disclosure_index_is_cheap_to_reject(self):
        """A forged reveal claiming index 10^6 must be rejected without
        walking the hash chain a million times (gap bound)."""
        import time

        sender = DapSender(SEED, 10)
        receiver = DapReceiver(sender.chain.commitment, make_condition(), LOCAL)
        forged = MessageKeyPacket(10 ** 6, b"f" * 25, b"\x01" * 10, provenance=FORGED)
        start = time.perf_counter()
        events = receiver.receive(forged, 0.5)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.1
        assert events[0].outcome is AuthOutcome.REJECTED_WEAK_AUTH

    def test_future_interval_announce_cannot_allocate_memory(self):
        """Announces claiming far-future intervals are implausible and
        never buffered — closing the state-exhaustion vector."""
        sender = DapSender(SEED, 10)
        receiver = DapReceiver(sender.chain.commitment, make_condition(), LOCAL)
        for future in (5, 100, 10 ** 6):
            events = receiver.receive(
                MacAnnouncePacket(future, b"\x02" * 10, provenance=FORGED), 0.5
            )
            assert events[0].outcome is AuthOutcome.DISCARDED_UNSAFE
        assert receiver.buffered_bits == 0

    def test_mu_tesla_huge_disclosure_is_cheap(self):
        import time

        sender = MuTeslaSender(SEED, 10)
        receiver = MuTeslaReceiver(sender.chain.commitment, make_condition(2))
        start = time.perf_counter()
        receiver.receive(
            KeyDisclosurePacket(10 ** 6, b"\x03" * 10, provenance=FORGED), 0.5
        )
        assert time.perf_counter() - start < 0.1


class TestReplayStrategies:
    def test_reveal_replay_is_idempotent(self):
        """Replaying the sender's own reveal packets gains nothing."""
        sender = DapSender(SEED, 8)
        receiver = DapReceiver(sender.chain.commitment, make_condition(), LOCAL)
        for interval in range(1, 8):
            now = interval - 0.5
            packets = list(sender.packets_for_interval(interval))
            for packet in packets:
                receiver.receive(packet, now)
            # adversary replays every reveal three times
            for packet in packets:
                if isinstance(packet, MessageKeyPacket):
                    for _ in range(3):
                        receiver.receive(packet, now)
        assert receiver.stats.authenticated == 6  # one per revealed interval

    def test_cross_interval_key_replay(self):
        """Using interval 1's (public) key to forge interval 3 fails:
        the chain authenticator refuses stale keys as newer indices."""
        sender = DapSender(SEED, 8)
        receiver = DapReceiver(sender.chain.commitment, make_condition(), LOCAL)
        for interval in (1, 2, 3):
            for packet in sender.packets_for_interval(interval):
                receiver.receive(packet, interval - 0.5)
        old_key = sender.chain.key(1)
        forged = MessageKeyPacket(3, b"f" * 25, old_key, provenance=FORGED)
        events = receiver.receive(forged, 3.5)
        assert any(
            e.outcome in (AuthOutcome.REJECTED_WEAK_AUTH, AuthOutcome.REJECTED_FORGED)
            for e in events
        )
        assert receiver.stats.forged_accepted == 0

    def test_cross_protocol_key_reuse(self):
        """A key chain from a parallel deployment (different seed) never
        authenticates here, even with identical parameters."""
        sender = DapSender(SEED, 8)
        other = DapSender(b"other-deployment", 8)
        receiver = DapReceiver(sender.chain.commitment, make_condition(), LOCAL)
        for packet in other.packets_for_interval(1):
            receiver.receive(packet, 0.5)
        for packet in other.packets_for_interval(2):
            receiver.receive(packet, 1.5)
        assert receiver.stats.authenticated == 0
        assert receiver.stats.rejected_weak_auth >= 1


class TestPaperLiteralConditionExploit:
    """Algorithm 2 line 2 discards a packet only when ``i + d < x`` —
    which *accepts* announcements arriving during interval ``i + d``,
    the very interval in which ``K_i`` is being disclosed. An attacker
    who hears the disclosure early in that interval can forge:

    1. learn ``K_i`` from the sender's reveal at the start of ``I_{i+d}``,
    2. announce ``MAC_{K_i}(M_forged)`` later in ``I_{i+d}`` — admitted
       by the paper's literal inequality,
    3. reveal ``(i, M_forged, K_i)`` — weak auth passes (genuine key),
       strong auth matches the attacker's own planted record.

    The textbook condition (``x < i + d``) blocks step 2. This is why
    the implementation defaults to the conservative check and keeps the
    paper's inequality only behind ``paper_literal=True``.
    """

    def _attack(self, paper_literal: bool) -> DapReceiver:
        schedule = IntervalSchedule(0.0, 1.0)
        condition = SecurityCondition(
            schedule, LooseTimeSync(0.0), disclosure_delay=1,
            paper_literal=paper_literal,
        )
        sender = DapSender(SEED, 10)
        receiver = DapReceiver(sender.chain.commitment, condition, LOCAL, buffers=4)
        # interval 1: sender's announce
        for packet in sender.packets_for_interval(1):
            receiver.receive(packet, 0.5)
        # interval 2 begins: the sender reveals (M_1, K_1) — public now.
        key_1 = sender.chain.key(1)
        from repro.crypto.mac import MacScheme

        forged_message = b"attacker-controlled-data!"
        forged_mac = MacScheme().compute(key_1, forged_message)
        # step 2: attacker's late announcement for interval 1, sent at
        # t = 1.4 (inside I_2 = I_{1+d}).
        receiver.receive(MacAnnouncePacket(1, forged_mac, provenance=FORGED), 1.4)
        # step 3: attacker's reveal with the genuine (now public) key.
        receiver.receive(
            MessageKeyPacket(1, forged_message, key_1, provenance=FORGED), 1.6
        )
        return receiver

    def test_paper_literal_inequality_is_forgeable(self):
        receiver = self._attack(paper_literal=True)
        assert receiver.stats.forged_accepted == 1

    def test_textbook_condition_blocks_the_attack(self):
        receiver = self._attack(paper_literal=False)
        assert receiver.stats.forged_accepted == 0
        assert receiver.stats.discarded_unsafe >= 1


class TestMicroMacWidthBoundary:
    """The 24-bit μMAC makes forgery-by-collision a 2^-24 event. This is
    a *probabilistic* boundary: shrink the μMAC enough and collisions
    become findable — demonstrating why the width matters and that the
    zero-forgery invariant is parameterised by it."""

    def _collision_attempts(self, micro_bits: int, attempts: int) -> int:
        sender = DapSender(SEED, 3)
        receiver = DapReceiver(
            sender.chain.commitment,
            make_condition(),
            LOCAL,
            buffers=4,
            micro_mac_bits=micro_bits,
        )
        for packet in sender.packets_for_interval(1):
            receiver.receive(packet, 0.5)
        genuine_key = sender.chain.key(1)
        accepted = 0
        for nonce in range(attempts):
            forged = MessageKeyPacket(
                1, b"forged-%08d" % nonce + b"x" * 11, genuine_key,
                provenance=FORGED,
            )
            events = receiver.receive(forged, 1.5)
            accepted += sum(
                e.outcome is AuthOutcome.AUTHENTICATED for e in events
            )
        return accepted

    def test_tiny_micro_mac_is_forgeable(self):
        """With 6-bit μMACs (64 values), a few hundred candidate messages
        find a collision — the attack the 24-bit width prices out."""
        accepted = self._collision_attempts(micro_bits=6, attempts=600)
        assert accepted >= 1

    def test_paper_width_resists_the_same_budget(self):
        accepted = self._collision_attempts(micro_bits=24, attempts=600)
        assert accepted == 0
