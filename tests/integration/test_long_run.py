"""Soak test: memory and state stay bounded over long deployments.

The paper's whole premise is memory-constrained nodes; a receiver
whose state grows with deployment lifetime would be broken regardless
of its buffer policy. These runs are long enough that leaks show up as
monotone growth.
"""

from __future__ import annotations

import random

from repro.protocols.dap import DapReceiver, DapSender
from repro.protocols.packets import MacAnnouncePacket
from repro.sim.scenario import ScenarioConfig, run_scenario
from repro.timesync.intervals import IntervalSchedule
from repro.timesync.sync import LooseTimeSync, SecurityCondition

SEED = b"soak-seed"


class TestBoundedState:
    def test_dap_memory_bounded_over_500_intervals(self):
        """Housekeeping keeps the record pool at O(d·m) regardless of
        deployment length, even under a flood."""
        schedule = IntervalSchedule(0.0, 1.0)
        condition = SecurityCondition(schedule, LooseTimeSync(0.01), 1)
        sender = DapSender(SEED, 501, announce_copies=3)
        receiver = DapReceiver(
            sender.chain.commitment, condition, b"local", buffers=4,
            rng=random.Random(1),
        )
        rng = random.Random(2)
        high_water = []
        for interval in range(1, 501):
            now = interval - 0.5
            for _ in range(6):
                receiver.receive(
                    MacAnnouncePacket(
                        interval,
                        bytes(rng.getrandbits(8) for _ in range(10)),
                        provenance="forged",
                    ),
                    now,
                )
            for packet in sender.packets_for_interval(interval):
                receiver.receive(packet, now)
            if interval % 50 == 0:
                high_water.append(receiver.buffered_bits)
        # bounded: the footprint at interval 500 is no larger than at 50.
        assert high_water[-1] <= high_water[0]
        assert max(high_water) <= 3 * 4 * 56  # <= 3 outstanding intervals
        assert receiver.stats.forged_accepted == 0
        # 6 forged vs 3 authentic copies, m=4: hypergeometric survival
        # C(6,4)/C(9,4) = 0.119 -> ~88% of 499 reveals authenticate.
        assert receiver.stats.authenticated >= 410

    def test_scenario_long_run_stays_healthy(self):
        result = run_scenario(
            ScenarioConfig(
                protocol="dap",
                intervals=300,
                receivers=2,
                buffers=4,
                attack_fraction=0.6,
                loss_probability=0.05,
                seed=9,
            )
        )
        assert result.fleet.total_forged_accepted == 0
        assert result.authentication_rate > 0.6
        # peak memory is a handful of intervals, not hundreds
        assert result.fleet.peak_buffer_bits < 50 * 56
