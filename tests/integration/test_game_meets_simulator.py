"""Integration between the analytic game and the packet-level simulator.

The game prices attacks with ``P = p^m``; the simulator implements the
actual reservoir mechanics. These tests verify the two agree — i.e.
that the model the paper optimises is the system the protocol runs.
"""

from __future__ import annotations

from math import comb

import pytest

from repro.game.adaptive import AdaptiveDefense, AttackEstimator
from repro.game.parameters import paper_parameters
from repro.sim.scenario import ScenarioConfig, run_scenario


def hypergeometric_attack_success(authentic: int, forged: int, m: int) -> float:
    """Exact survival model for a finite copy pool (the simulator's truth;
    converges to p^m as the pool grows)."""
    total = authentic + forged
    if m >= total:
        return 0.0 if authentic else 1.0
    if forged < m:
        return 0.0
    return comb(forged, m) / comb(total, m)


class TestEmpiricalVsAnalytic:
    @pytest.mark.parametrize("p,m", [(0.5, 3), (0.8, 3), (0.8, 6)])
    def test_attack_success_matches_model(self, p, m):
        copies = 5
        forged = round(copies * p / (1 - p))
        result = run_scenario(
            ScenarioConfig(
                protocol="dap",
                intervals=150,
                receivers=2,
                buffers=m,
                attack_fraction=p,
                announce_copies=copies,
                seed=3,
            )
        )
        expected = hypergeometric_attack_success(copies, forged, m)
        assert result.attack_success_rate == pytest.approx(expected, abs=0.08)

    def test_hypergeometric_approaches_p_to_m(self):
        """Sanity on the model itself: with many copies, the exact
        finite-pool probability converges to the paper's p^m."""
        p, m = 0.8, 4
        coarse = hypergeometric_attack_success(5, 20, m)
        fine = hypergeometric_attack_success(200, 800, m)
        assert fine == pytest.approx(p ** m, abs=0.005)
        assert abs(coarse - p ** m) < 0.06

    def test_game_optimal_m_beats_naive_m_in_simulation(self):
        """Run the simulator at the game's recommended m and at m=1;
        the recommendation must authenticate substantially more."""
        p = 0.8
        policy = AdaptiveDefense(
            paper_parameters(p=0.5, m=1),
            AttackEstimator(alpha=1.0, initial=p),
        )
        m_star = policy.recommended_buffers()
        base = dict(protocol="dap", intervals=80, attack_fraction=p, seed=9)
        tuned = run_scenario(ScenarioConfig(buffers=m_star, **base))
        naive = run_scenario(ScenarioConfig(buffers=1, **base))
        assert tuned.authentication_rate > naive.authentication_rate + 0.3


class TestAdaptiveEstimationLoop:
    def test_estimator_recovers_attack_level_from_receiver_stats(self):
        """Feed the estimator what a DAP node actually observes and check
        it converges near the true p."""
        p, m = 0.8, 5
        result = run_scenario(
            ScenarioConfig(
                protocol="dap",
                intervals=120,
                receivers=1,
                buffers=m,
                attack_fraction=p,
                announce_copies=5,
                seed=4,
            )
        )
        node = result.nodes[0]
        estimator = AttackEstimator(alpha=0.1, initial=0.5)
        observations = node.receiver.observations
        assert observations, "receiver recorded no reveal observations"
        for _interval, stored, matched in observations:
            estimator.observe_interval(stored, matched)
        # matched/stored is an unbiased sample of the authentic fraction,
        # so the estimate lands near the true p.
        assert estimator.estimate == pytest.approx(p, abs=0.12)

    def test_adaptive_policy_tracks_changing_attack(self):
        estimator = AttackEstimator(alpha=0.5, initial=0.2)
        policy = AdaptiveDefense(paper_parameters(p=0.5, m=1), estimator)
        quiet = policy.recommended_buffers()
        for _ in range(10):
            estimator.observe_fraction(0.9)
        stormy = policy.recommended_buffers()
        for _ in range(10):
            estimator.observe_fraction(0.1)
        calm = policy.recommended_buffers()
        assert quiet < stormy
        assert calm < stormy
