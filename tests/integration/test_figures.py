"""Shape checks for every paper artifact, end to end.

These are reduced-resolution versions of the benchmark harnesses in
``benchmarks/`` — they assert the *shapes* EXPERIMENTS.md records, so a
regression in any layer breaks the reproduction loudly.
"""

from __future__ import annotations

import pytest

from repro.analysis.bandwidth import (
    PAPER_MEMORY_LARGE_BITS,
    PAPER_MEMORY_SMALL_BITS,
    fig5_series,
)
from repro.analysis.costs import cost_curves, crossover_p
from repro.analysis.trajectories import regime_bands
from repro.game.ess import EssType
from repro.game.parameters import paper_parameters
from repro.game.payoff import PayoffMatrix


class TestTable2:
    def test_payoff_matrix_signs(self):
        """Structural facts of Table II at the paper's constants."""
        matrix = PayoffMatrix.at(paper_parameters(p=0.8, m=20), 0.5, 0.5)
        assert matrix.plain_quiet.defender == matrix.plain_quiet.attacker == 0.0
        assert matrix.plain_dos.defender < matrix.buffer_dos.defender < 0
        assert matrix.plain_dos.attacker > matrix.buffer_dos.attacker
        assert matrix.buffer_quiet.defender < 0  # defense is never free


class TestFig5:
    def test_shapes(self):
        levels = [0.02, 0.05, 0.1, 0.2, 0.4]
        series = fig5_series(levels)
        for memory in (PAPER_MEMORY_LARGE_BITS, PAPER_MEMORY_SMALL_BITS):
            dap = series[("DAP", memory)]
            tpp = series[("TESLA++", memory)]
            # DAP strictly dominates TESLA++ at equal memory.
            assert all(
                d.attacker_bandwidth > t.attacker_bandwidth
                for d, t in zip(dap, tpp)
            )
            # Curves are monotone in the attack level.
            attacker_bw = [point.attacker_bandwidth for point in dap]
            assert attacker_bw == sorted(attacker_bw)


class TestFig6:
    def test_four_regimes_in_paper_order(self):
        base = paper_parameters(p=0.8, m=1, max_buffers=100)
        bands, _ = regime_bands(base, [2, 8, 11, 13, 16, 30, 45, 54, 60, 90])
        assert [band.ess_type for band in bands] == [
            EssType.CORNER_11,
            EssType.EDGE_1Y,
            EssType.INTERIOR,
            EssType.EDGE_X1,
        ]

    def test_band_boundaries_match_paper_within_one(self):
        base = paper_parameters(p=0.8, m=1, max_buffers=100)
        _, labels = regime_bands(base, [11, 12, 17, 18, 19, 54, 55])
        assert labels[11] is EssType.CORNER_11  # paper: 1..11
        assert labels[12] is EssType.EDGE_1Y  # paper: 12..17
        assert labels[17] is EssType.EDGE_1Y
        # paper's (1,Y')/(X,Y) edge is 17/18; our Euler realisation puts
        # it at 18/19 (same clipping artifact, one step later)
        assert labels[19] is EssType.INTERIOR
        assert labels[54] is EssType.INTERIOR  # paper: 18..54
        assert labels[55] is EssType.EDGE_X1  # paper: 55..100


class TestFig7:
    @pytest.fixture(scope="class")
    def curves(self):
        grid = [0.3, 0.6, 0.8, 0.9, 0.95, 0.98]
        return cost_curves(paper_parameters(p=0.5, m=1), grid, selection="paper")

    def test_m_increases_with_p(self, curves):
        ms = curves.optimal_ms
        assert ms[0] < ms[2] < ms[3]

    def test_m_saturates_above_094(self, curves):
        by_p = dict(zip(curves.attack_levels, curves.optimal_ms))
        assert by_p[0.95] > 35 or by_p[0.98] > 35

    def test_crossover_detected(self, curves):
        assert crossover_p(curves) is not None


class TestFig8:
    @pytest.fixture(scope="class")
    def curves(self):
        grid = [0.3, 0.6, 0.8, 0.9, 0.95, 0.98]
        return cost_curves(paper_parameters(p=0.5, m=1), grid, selection="paper")

    def test_game_defense_never_worse(self, curves):
        assert curves.always_cheaper()

    def test_gap_reopens_at_extreme_p(self, curves):
        by_p = {point.p: point.saving for point in curves.points}
        assert by_p[0.98] > by_p[0.95]

    def test_naive_cost_floor_is_k2_times_m(self, curves):
        assert min(curves.naive_costs) >= 4 * 50 - 1e-9
