"""End-to-end protocol runs through the full simulator stack.

Every protocol is exercised under clean channels, lossy channels and
flooding attacks; the security invariant (no forged packet ever
authenticates) must hold in all of them.
"""

from __future__ import annotations

import pytest

from repro.sim.scenario import ScenarioConfig, run_scenario

ALL_PROTOCOLS = ("dap", "tesla_pp", "tesla", "mu_tesla", "multilevel", "eftp", "edrp")


class TestCleanChannel:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_full_authentication(self, protocol):
        result = run_scenario(
            ScenarioConfig(protocol=protocol, intervals=25, receivers=2)
        )
        assert result.authentication_rate == 1.0
        assert result.fleet.total_forged_accepted == 0


class TestLossyChannel:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_degrades_gracefully(self, protocol):
        result = run_scenario(
            ScenarioConfig(
                protocol=protocol,
                intervals=30,
                receivers=2,
                loss_probability=0.15,
                announce_copies=3,
            )
        )
        assert result.authentication_rate > 0.3
        assert result.fleet.total_forged_accepted == 0

    def test_severe_loss_still_sound(self):
        """The paper's 'low QoS channels': heavy loss hurts availability,
        never integrity."""
        result = run_scenario(
            ScenarioConfig(
                protocol="dap", intervals=40, receivers=3, loss_probability=0.5
            )
        )
        assert 0.0 < result.authentication_rate < 1.0
        assert result.fleet.total_forged_accepted == 0


class TestUnderFlood:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_no_forged_acceptance_ever(self, protocol):
        result = run_scenario(
            ScenarioConfig(
                protocol=protocol,
                intervals=30,
                receivers=2,
                attack_fraction=0.8,
            )
        )
        assert result.fleet.total_forged_accepted == 0

    def test_extreme_flood_sound(self):
        """'works even in the extreme case' (abstract): p = 0.97."""
        result = run_scenario(
            ScenarioConfig(
                protocol="dap",
                intervals=30,
                receivers=2,
                buffers=12,
                attack_fraction=0.97,
            )
        )
        assert result.fleet.total_forged_accepted == 0
        assert result.forged_bandwidth_fraction > 0.8

    def test_dap_beats_teslapp_under_burst_flood(self):
        """The §IV headline, measured through the whole stack."""
        common = dict(intervals=40, receivers=3, buffers=3, attack_fraction=0.8)
        dap = run_scenario(ScenarioConfig(protocol="dap", **common))
        teslapp = run_scenario(ScenarioConfig(protocol="tesla_pp", **common))
        assert dap.authentication_rate > teslapp.authentication_rate + 0.2

    def test_more_buffers_help_dap(self):
        rates = []
        for m in (1, 4, 10):
            result = run_scenario(
                ScenarioConfig(
                    protocol="dap", intervals=60, buffers=m, attack_fraction=0.8
                )
            )
            rates.append(result.authentication_rate)
        assert rates[0] < rates[1] < rates[2]

    def test_flood_plus_loss_combined(self):
        result = run_scenario(
            ScenarioConfig(
                protocol="dap",
                intervals=40,
                receivers=2,
                buffers=6,
                attack_fraction=0.7,
                loss_probability=0.2,
            )
        )
        assert result.fleet.total_forged_accepted == 0
        assert result.authentication_rate > 0.2


class TestMemoryFootprint:
    def test_dap_uses_fraction_of_teslapp_memory(self):
        """Same buffer count -> DAP's records are half TESLA++'s actual
        (and 1/5 of the paper-accounted 280-bit records)."""
        common = dict(intervals=30, receivers=1, buffers=6, attack_fraction=0.6)
        dap = run_scenario(ScenarioConfig(protocol="dap", **common))
        teslapp = run_scenario(ScenarioConfig(protocol="tesla_pp", **common))
        assert dap.fleet.peak_buffer_bits * 2 <= teslapp.fleet.peak_buffer_bits

    def test_peak_memory_scales_with_buffers(self):
        small = run_scenario(
            ScenarioConfig(protocol="dap", intervals=30, buffers=2,
                           attack_fraction=0.8)
        )
        large = run_scenario(
            ScenarioConfig(protocol="dap", intervals=30, buffers=8,
                           attack_fraction=0.8)
        )
        assert large.fleet.peak_buffer_bits > small.fleet.peak_buffer_bits
