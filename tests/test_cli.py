"""CLI tests — each subcommand through ``repro.cli.main``."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["conquer"])


class TestSolve:
    def test_prints_candidates_and_realized(self, capsys):
        assert main(["solve", "--p", "0.8", "--m", "30"]) == 0
        out = capsys.readouterr().out
        assert "(X,Y)" in out
        assert "ESS" in out
        assert "Euler dynamics reach" in out

    def test_custom_constants(self, capsys):
        assert main(
            ["solve", "--p", "0.5", "--m", "5", "--ra", "100", "--k1", "10",
             "--k2", "2"]
        ) == 0

    def test_invalid_p_reports_error(self, capsys):
        assert main(["solve", "--p", "1.5", "--m", "5"]) == 2
        assert "error:" in capsys.readouterr().err


class TestOptimize:
    def test_prints_optimum(self, capsys):
        assert main(["optimize", "--p", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "optimal m          : 13" in out
        assert "naive cost" in out

    def test_full_sweep_table(self, capsys):
        assert main(["optimize", "--p", "0.8", "--full"]) == 0
        out = capsys.readouterr().out
        assert "<-- optimal" in out

    def test_paper_selection(self, capsys):
        assert main(["optimize", "--p", "0.8", "--selection", "paper"]) == 0
        assert "(paper)" in capsys.readouterr().out


class TestEngineFlags:
    def test_jobs_flag_parsed(self):
        args = build_parser().parse_args(
            ["simulate", "--seeds", "2", "--jobs", "4"]
        )
        assert args.jobs == 4
        assert args.no_cache is False

    def test_jobs_defaults_to_serial(self):
        for command in (
            ["simulate"],
            ["figures"],
            ["sensitivity", "--p", "0.8"],
        ):
            args = build_parser().parse_args(command)
            assert args.jobs is None
            assert args.no_cache is False

    def test_no_cache_flag_parsed(self):
        args = build_parser().parse_args(["figures", "--no-cache"])
        assert args.no_cache is True

    def test_jobs_requires_a_value(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--jobs"])

    def test_flags_not_available_on_analytic_commands(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--p", "0.8", "--m", "3",
                                       "--jobs", "2"])

    def test_simulate_with_jobs_matches_serial(self, capsys):
        argv = ["simulate", "--protocol", "dap", "--p", "0.7", "--buffers", "4",
                "--intervals", "15", "--receivers", "2", "--seeds", "2"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_simulate_no_cache_runs(self, capsys):
        assert main(
            ["simulate", "--intervals", "10", "--receivers", "1",
             "--seeds", "1", "--no-cache"]
        ) == 0


class TestSimulate:
    def test_reports_rates(self, capsys):
        code = main(
            ["simulate", "--protocol", "dap", "--p", "0.7", "--buffers", "4",
             "--intervals", "20", "--receivers", "2", "--seeds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "authentication rate" in out
        assert "forged accepted     : 0" in out

    def test_clean_run(self, capsys):
        code = main(
            ["simulate", "--intervals", "10", "--receivers", "1", "--seeds", "1"]
        )
        assert code == 0


class TestEngineChoice:
    SIM_ARGS = ["simulate", "--protocol", "dap", "--p", "0.5", "--buffers", "4",
                "--intervals", "15", "--receivers", "3", "--seeds", "2"]

    def test_engine_defaults(self):
        # simulate defaults to None so --scenario can supply the
        # descriptor's engine; the effective fallback is still des.
        assert build_parser().parse_args(["simulate"]).engine is None
        assert build_parser().parse_args(["loadtest"]).engine == "des"

    def test_unknown_engine_rejected_at_parse_time(self):
        for command in (["simulate"], ["loadtest"]):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args(command + ["--engine", "quantum"])
            assert excinfo.value.code == 2

    def test_simulate_vectorized_matches_des(self, capsys):
        assert main(self.SIM_ARGS + ["--engine", "des"]) == 0
        des_out = capsys.readouterr().out
        assert main(self.SIM_ARGS + ["--engine", "vectorized"]) == 0
        vectorized_out = capsys.readouterr().out
        assert vectorized_out == des_out

    def test_loadtest_vectorized_matches_des_tallies(self, capsys):
        import json

        argv = ["loadtest", "--receivers", "2", "--intervals", "12",
                "--interval-duration", "0.1", "--p", "0.5", "--seed", "3"]
        assert main(argv) == 0
        des = json.loads(capsys.readouterr().out)
        assert main(argv + ["--engine", "vectorized"]) == 0
        vectorized = json.loads(capsys.readouterr().out)
        for field in ("authentication_rate", "attack_success_rate",
                      "forged_accepted", "peak_buffer_bits", "sent_authentic"):
            assert vectorized[field] == des[field], field
        # Transport artifacts have no in-memory equivalent.
        assert vectorized["datagrams_delivered"] == 0

    def test_loadtest_vectorized_rejects_proxy_only_faults(self, capsys):
        assert main(
            ["loadtest", "--engine", "vectorized", "--jitter", "0.01"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestFigures:
    def test_writes_all_csvs(self, tmp_path, capsys):
        code = main(
            ["figures", "--out", str(tmp_path), "--points", "8", "--no-plots"]
        )
        assert code == 0
        for name in (
            "fig5_bandwidth.csv",
            "fig6_regimes.csv",
            "fig7_optimal_m.csv",
            "fig8_costs.csv",
        ):
            assert (tmp_path / name).exists(), name

    def test_fig8_csv_content(self, tmp_path):
        main(["figures", "--out", str(tmp_path), "--points", "8", "--no-plots"])
        with (tmp_path / "fig8_costs.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 8
        for row in rows:
            assert float(row["game_cost"]) <= float(row["naive_cost"]) + 1e-6

    def test_plots_printed(self, tmp_path, capsys):
        main(["figures", "--out", str(tmp_path), "--points", "8"])
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "Fig. 8" in out
        assert "Fig. 6 regimes" in out


class TestSensitivity:
    def test_prints_all_constants(self, capsys):
        assert main(["sensitivity", "--p", "0.8"]) == 0
        out = capsys.readouterr().out
        for field in ("ra", "k1", "k2"):
            assert field in out


class TestBoundaries:
    def test_prints_band_edges(self, capsys):
        assert main(["boundaries", "--p", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "11.32" in out
        assert "54.35" in out
        assert "m=30:(X,Y)" in out

    def test_degenerate_p_reports_error(self, capsys):
        assert main(["boundaries", "--p", "1.0"]) == 2
        assert "error:" in capsys.readouterr().err


class TestPortrait:
    def test_prints_portrait(self, capsys):
        assert main(["portrait", "--p", "0.8", "--m", "30", "--grid", "11"]) == 0
        out = capsys.readouterr().out
        assert "@" in out
        assert "rest points" in out


class TestLoadtest:
    ARGS = [
        "loadtest", "--transport", "loopback", "--receivers", "2",
        "--intervals", "12", "--interval-duration", "0.1",
        "--p", "0.5", "--seed", "3",
    ]

    def test_emits_json_report(self, capsys):
        import json

        assert main(self.ARGS) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["transport"] == "loopback"
        assert report["packets_per_second"] > 0
        assert report["latency_p99_us"] >= report["latency_p50_us"] > 0
        assert report["forged_accepted"] == 0

    def test_rejects_jobs_below_one(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--jobs", "0"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_rejects_non_integer_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--jobs", "2.5"])
        assert excinfo.value.code == 2
        assert "expected an integer" in capsys.readouterr().err

    def test_rejects_non_integer_rate(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--rate", "10.5"])
        assert excinfo.value.code == 2
        assert "expected an integer" in capsys.readouterr().err

    def test_rejects_negative_rate(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--rate", "-5"])
        assert excinfo.value.code == 2

    def test_rejects_bad_transport(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest", "--transport", "pigeon"])

    def test_config_errors_reported_cleanly(self, capsys):
        # shards > receivers is a library-level ConfigurationError
        assert main(self.ARGS + ["--shards", "5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_parallel_jobs_accepted(self, capsys):
        import json

        assert main(self.ARGS + ["--shards", "2", "--jobs", "2"]) == 0
        assert json.loads(capsys.readouterr().out)["shards"] == 2


class TestServeAttackParsing:
    def test_serve_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_attack_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack"])

    def test_attack_rejects_fractional_rate(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["attack", "--port", "9000", "--rate", "99.5"]
            )
        assert excinfo.value.code == 2

    def test_serve_rejects_port_zero(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--port", "0"])

    def test_attack_runs_against_closed_port(self, capsys):
        assert main([
            "attack", "--port", "45998", "--rate", "40",
            "--duration", "0.25", "--interval-duration", "0.5",
        ]) == 0
        assert "injected 10 forged announcements" in capsys.readouterr().out


class TestProfile:
    def test_emits_json_report_with_nonzero_counters(self, capsys):
        import json

        assert main(["profile", "--preset", "fig5", "--top", "5"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counters"]["crypto.hash"] > 0
        assert report["counters"]["crypto.mac"] > 0
        assert report["counters"]["sim.events"] > 0
        assert report["label"].startswith("scenario:fig5")
        assert len(report["hotspots"]) <= 5

    def test_writes_report_to_out(self, capsys, tmp_path):
        import json

        out = tmp_path / "perf" / "report.json"
        assert main(["profile", "--preset", "smoke", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["counters"]["crypto.hash"] > 0

    def test_repeat_scales_counters(self, capsys):
        import json

        assert main(["profile", "--preset", "smoke"]) == 0
        once = json.loads(capsys.readouterr().out)["counters"]["crypto.hash"]
        assert main(["profile", "--preset", "smoke", "--repeat", "2"]) == 0
        twice = json.loads(capsys.readouterr().out)["counters"]["crypto.hash"]
        assert twice == 2 * once

    def test_rejects_bad_inputs_at_parse_time(self, capsys):
        for argv in (
            ["profile", "--repeat", "0"],
            ["profile", "--repeat", "-2"],
            ["profile", "--top", "0"],
            ["profile", "--interval-duration", "-1.0"],
            ["profile", "--interval-duration", "0"],
            ["profile", "--interval-duration", "nope"],
            ["profile", "--preset", "no-such-preset"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2, argv
            capsys.readouterr()


class TestBench:
    def test_writes_json_and_summary(self, capsys, tmp_path):
        import json

        path = tmp_path / "BENCH_crypto.json"
        assert main(
            ["bench", "--json", str(path), "--preset", "smoke", "--repeat", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "keychain flood walks" in out
        assert f"wrote {path}" in out
        document = json.loads(path.read_text())
        assert document["results"]["keychain_walks"]["speedup"] >= 2.0
        assert document["results"]["scenario"]["counters"]["crypto.hash"] > 0

    def test_rejects_bad_inputs_at_parse_time(self, capsys):
        for argv in (
            ["bench", "--repeat", "0"],
            ["bench", "--repeat", "1.5"],
            ["bench", "--preset", "huge"],
            ["bench", "--suite", "cooking"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2, argv
            capsys.readouterr()

    def test_sim_suite_writes_parity_checked_speedups(self, capsys, tmp_path):
        import json

        path = tmp_path / "BENCH_sim.json"
        assert main(
            ["bench", "--suite", "sim", "--json", str(path),
             "--preset", "smoke", "--repeat", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet_dap" in out
        document = json.loads(path.read_text())
        assert document["suite"] == "sim"
        for section in document["results"].values():
            assert section["identical_summaries"] is True
            assert section["speedup"] > 1.0

    def test_suite_defaults_json_path(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["bench", "--suite", "sim", "--preset", "smoke", "--repeat", "1"]
        ) == 0
        assert (tmp_path / "BENCH_sim.json").exists()
        capsys.readouterr()


class TestDurationValidation:
    def test_loadtest_rejects_nonpositive_interval_duration(self, capsys):
        for bad in ("0", "-0.5", "inf"):
            with pytest.raises(SystemExit) as excinfo:
                main(["loadtest", "--interval-duration", bad])
            assert excinfo.value.code == 2, bad
            capsys.readouterr()

    def test_attack_rejects_negative_duration(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["attack", "--port", "45998", "--duration", "-1"])
        assert excinfo.value.code == 2
        assert "positive finite" in capsys.readouterr().err


class TestLint:
    def test_lint_src_is_clean(self, capsys):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        assert main(["lint", str(root / "src")]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_lint_reports_violations_with_exit_one(self, tmp_path, capsys):
        tree = tmp_path / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "dirty.py").write_text(
            "import random\n\n\ndef f():\n    return random.random()\n"
        )
        assert main(["lint", str(tmp_path)]) == 1
        assert "RPL002" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        import json

        (tmp_path / "empty.py").write_text("VALUE = 1\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["violations"] == []

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "RPL001" in capsys.readouterr().out

    def test_lint_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err


class TestScenariosSubcommand:
    def test_list_renders_catalog_table(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "scenario catalog" in out
        assert "fig5-t2" in out
        assert "remote-id-t2" in out

    def test_list_filters(self, capsys):
        assert main(["scenarios", "list", "--family", "remote-id"]) == 0
        out = capsys.readouterr().out
        assert "remote-id-t2" in out
        assert "fig5-t2" not in out
        assert main(["scenarios", "list", "--tier", "T3"]) == 0
        out = capsys.readouterr().out
        assert "fig6-evolution-t3" in out
        assert "smoke-t2" not in out

    def test_describe_prints_full_config(self, capsys):
        assert main(["scenarios", "describe", "fig5-t2"]) == 0
        out = capsys.readouterr().out
        assert "tier          : T2" in out
        assert "attack_fraction" in out
        assert "provenance" in out

    def test_describe_unknown_scenario_lists_names(self, capsys):
        assert main(["scenarios", "describe", "no-such"]) == 2
        assert "smoke-t2" in capsys.readouterr().err

    def test_validate_named_subset(self, capsys):
        code = main(
            ["scenarios", "validate", "smoke-t2", "crowdsensing-tesla-t2",
             "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2/2 scenarios uphold the replay contract" in out
        # The fast path is catalog-complete: every entry (the tesla one
        # included) validates on both engines.
        assert out.count("engines=des+vectorized") == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])


class TestScenarioFlags:
    def test_simulate_scenario_uses_canonical_seeds(self, capsys):
        assert main(["simulate", "--scenario", "smoke-t2"]) == 0
        out = capsys.readouterr().out
        assert "scenario            : smoke-t2 (tier T2, crowdsensing)" in out
        assert "authentication rate" in out

    def test_simulate_scenario_engine_override_matches(self, capsys):
        assert main(
            ["simulate", "--scenario", "smoke-t2", "--engine", "des"]
        ) == 0
        des_out = capsys.readouterr().out
        assert main(
            ["simulate", "--scenario", "smoke-t2", "--engine", "vectorized"]
        ) == 0
        assert capsys.readouterr().out == des_out

    def test_simulate_unknown_scenario_is_clean_error(self, capsys):
        assert main(["simulate", "--scenario", "no-such"]) == 2
        assert "registered scenarios" in capsys.readouterr().err

    def test_unknown_protocol_lists_choices_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--protocol", "nosuch"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for name in ("dap", "tesla_pp", "mu_tesla", "multilevel", "edrp"):
            assert name in err

    def test_loadtest_protocol_choices_are_net_capable_only(self, capsys):
        with pytest.raises(SystemExit):
            main(["loadtest", "--protocol", "multilevel"])
        err = capsys.readouterr().err
        assert "dap" in err and "tesla_pp" in err

    def test_simulate_workload_flag(self, capsys):
        assert main(
            ["simulate", "--workload", "vehicular-beacon", "--intervals",
             "10", "--receivers", "2", "--seeds", "1"]
        ) == 0

    def test_loadtest_scenario_flag(self, capsys):
        import json

        assert main(
            ["loadtest", "--scenario", "smoke-t2", "--intervals", "8",
             "--interval-duration", "0.05"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["forged_accepted"] == 0

    def test_figures_scenario_writes_extra_csv(self, tmp_path, capsys):
        assert main(
            ["figures", "--out", str(tmp_path), "--points", "16",
             "--scenario", "smoke-t2"]
        ) == 0
        path = tmp_path / "scenario_smoke-t2.csv"
        assert path.exists()
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) >= 2


class TestCluster:
    def test_soak_smoke_writes_report_and_metrics(self, tmp_path, capsys):
        import json

        report = tmp_path / "cluster_report.json"
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            ["cluster", "soak", "--scenario", "crowdsensing-baseline-t0",
             "--workers", "2", "--duration", "60",
             "--metrics", str(metrics), "--report", str(report)]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        document = json.loads(report.read_text())
        assert document["schema_version"] == 1
        assert document["transport"] == "loopback"
        assert document["forged_accepted"] == 0
        assert json.loads(captured.out) == document
        assert "reconciliation: ok" in captured.err
        assert metrics.exists()
        assert metrics.read_text().strip()

    def test_unknown_scenario_exits_2(self, capsys):
        code = main(
            ["cluster", "soak", "--scenario", "no-such-scenario"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "no-such-scenario" in err

    def test_rejects_zero_workers(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["cluster", "soak", "--scenario",
                 "crowdsensing-baseline-t0", "--workers", "0"]
            )
        assert "positive integer" in capsys.readouterr().err

    def test_rejects_zero_duration(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["cluster", "soak", "--scenario",
                 "crowdsensing-baseline-t0", "--duration", "0"]
            )

    def test_rejects_negative_stall(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["cluster", "soak", "--scenario",
                 "crowdsensing-baseline-t0", "--stall", "-1"]
            )
        assert "non-negative" in capsys.readouterr().err

    def test_rejects_malformed_fault_spec(self, capsys):
        code = main(
            ["cluster", "soak", "--scenario", "crowdsensing-baseline-t0",
             "--fault", "not-a-spec"]
        )
        assert code == 2
        assert "fault spec" in capsys.readouterr().err

    def test_cluster_requires_a_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster"])

    def test_worker_rejects_malformed_connect(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "worker", "--connect", "no-port"])
        assert "HOST:PORT" in capsys.readouterr().err

    def test_worker_fails_cleanly_when_coordinator_is_gone(self, capsys):
        # Nothing listens on this port: the daemon must return 1 with a
        # readable error, not raise.
        code = main(
            ["cluster", "worker", "--connect", "127.0.0.1:1",
             "--max-runtime", "5"]
        )
        assert code == 1
        assert "worker error" in capsys.readouterr().out
