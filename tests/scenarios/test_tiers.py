"""Difficulty tiers: composable TierSpecs, monotone hostility."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.tiers import FIXED_M, REOPTIMIZE, TIERS, TierSpec, tier
from repro.sim.scenario import ScenarioConfig


class TestCatalog:
    def test_canonical_names_in_order(self):
        assert tuple(TIERS) == ("T0", "T1", "T2", "T3")

    def test_lookup(self):
        assert tier("T2") is TIERS["T2"]

    def test_unknown_tier_lists_valid_names(self):
        with pytest.raises(ConfigurationError, match="T0"):
            tier("T9")

    def test_hostility_is_monotone(self):
        attacks = [spec.attack_fraction for spec in TIERS.values()]
        losses = [spec.loss_probability for spec in TIERS.values()]
        assert attacks == sorted(attacks)
        assert losses == sorted(losses)

    def test_t2_is_the_paper_operating_point(self):
        spec = tier("T2")
        assert spec.attack_fraction == 0.5
        assert spec.loss_probability == 0.1
        assert spec.defender_latitude == FIXED_M

    def test_only_the_storm_reoptimizes(self):
        latitudes = {
            name: spec.allows_reoptimization for name, spec in TIERS.items()
        }
        assert latitudes == {
            "T0": False, "T1": False, "T2": False, "T3": True,
        }
        assert tier("T3").defender_latitude == REOPTIMIZE

    def test_only_the_storm_has_fade_shocks(self):
        assert tier("T3").loss_mean_burst is not None
        for name in ("T0", "T1", "T2"):
            assert tier(name).loss_mean_burst is None


class TestApply:
    def test_apply_swaps_situational_knobs_only(self):
        base = ScenarioConfig(
            protocol="tesla_pp", receivers=9, buffers=5, seed=42
        )
        shaped = tier("T3").apply(base)
        # Situational knobs come from the tier...
        assert shaped.attack_fraction == 0.8
        assert shaped.attack_burst_fraction == 0.125
        assert shaped.loss_probability == 0.2
        assert shaped.loss_mean_burst == 4.0
        # ...identity, sizing and seed stay the scenario's own.
        assert shaped.protocol == "tesla_pp"
        assert shaped.receivers == 9
        assert shaped.buffers == 5
        assert shaped.seed == 42

    def test_tiers_compose_with_any_base(self):
        base = ScenarioConfig(workload="remote-id")
        for spec in TIERS.values():
            shaped = spec.apply(base)
            assert shaped.workload == "remote-id"
            assert shaped.attack_fraction == spec.attack_fraction

    def test_specs_are_immutable(self):
        with pytest.raises(AttributeError):
            tier("T0").attack_fraction = 0.9  # type: ignore[misc]

    def test_custom_spec_validates_nothing_extra(self):
        """TierSpec is a value object; apply works for ad-hoc tiers."""
        spec = TierSpec(
            name="T2",
            attack_fraction=0.3,
            attack_burst_fraction=0.5,
            loss_probability=0.05,
            loss_mean_burst=None,
            defender_latitude=FIXED_M,
            description="ad hoc",
        )
        assert spec.apply(ScenarioConfig()).attack_fraction == 0.3
