"""Seeded programmatic generation: grids, random draws, addressing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    GeneratorSpec,
    generate_scenarios,
    generated_name,
    get_scenario,
    unregister_scenario,
)

AXES = (
    ("receivers", (3, 5)),
    ("attack_fraction", (0.2, 0.8)),
)


class TestSpecValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            GeneratorSpec(base="smoke-t2", axes=AXES, mode="exhaustive")

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="axes"):
            GeneratorSpec(base="smoke-t2", axes=())

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            GeneratorSpec(
                base="smoke-t2",
                axes=(("receivers", (3,)), ("receivers", (5,))),
            )

    def test_empty_axis_values_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            GeneratorSpec(base="smoke-t2", axes=(("receivers", ()),))

    def test_random_mode_needs_samples(self):
        with pytest.raises(ConfigurationError, match="samples"):
            GeneratorSpec(base="smoke-t2", axes=AXES, mode="random")

    def test_unknown_axis_field_rejected_at_generation(self):
        spec = GeneratorSpec(base="smoke-t2", axes=(("warp_factor", (9,)),))
        with pytest.raises(ConfigurationError, match="warp_factor"):
            generate_scenarios(spec)


class TestGridMode:
    def test_full_cross_product(self):
        batch = generate_scenarios(GeneratorSpec(base="smoke-t2", axes=AXES))
        assert len(batch) == 4
        points = {
            (d.config.receivers, d.config.attack_fraction) for d in batch
        }
        assert points == {(3, 0.2), (3, 0.8), (5, 0.2), (5, 0.8)}

    def test_variants_inherit_base_identity(self):
        base = get_scenario("smoke-t2")
        for d in generate_scenarios(GeneratorSpec(base="smoke-t2", axes=AXES)):
            assert d.tier == base.tier
            assert d.seeds == base.seeds
            assert d.engines == base.engines
            assert d.family == base.family
            assert d.generated is True
            assert "smoke-t2" in d.provenance

    def test_names_are_content_addressed(self):
        batch = generate_scenarios(GeneratorSpec(base="smoke-t2", axes=AXES))
        for d in batch:
            assert d.name == generated_name("smoke-t2", d.config)
            assert d.name.startswith("smoke-t2-gen-")
        assert len({d.name for d in batch}) == len(batch)

    def test_regeneration_mints_identical_names(self):
        spec = GeneratorSpec(base="smoke-t2", axes=AXES)
        first = [d.name for d in generate_scenarios(spec)]
        second = [d.name for d in generate_scenarios(spec)]
        assert first == second

    def test_protocol_axis_keeps_vectorized_for_all_families(self):
        # The fast path is catalog-complete: a protocol axis no longer
        # drops the vectorized declaration for any family.
        spec = GeneratorSpec(
            base="smoke-t2",
            axes=(("protocol", ("dap", "tesla", "multilevel")),),
        )
        by_protocol = {
            d.config.protocol: d for d in generate_scenarios(spec)
        }
        for protocol in ("dap", "tesla", "multilevel"):
            assert "vectorized" in by_protocol[protocol].engines
            assert by_protocol[protocol].engine_exclusion is None


class TestRandomMode:
    def test_seeded_draws_are_deterministic(self):
        spec = GeneratorSpec(
            base="smoke-t2", axes=AXES, mode="random", samples=8, seed=3
        )
        assert [d.name for d in generate_scenarios(spec)] == [
            d.name for d in generate_scenarios(spec)
        ]

    def test_seed_changes_the_draw(self):
        def names(seed):
            return [
                d.name
                for d in generate_scenarios(
                    GeneratorSpec(
                        base="smoke-t2", axes=AXES, mode="random",
                        samples=8, seed=seed,
                    )
                )
            ]

        assert names(3) != names(4)

    def test_duplicates_collapse_by_content(self):
        spec = GeneratorSpec(
            base="smoke-t2",
            axes=(("receivers", (3,)),),  # one point, many samples
            mode="random",
            samples=10,
            seed=1,
        )
        assert len(generate_scenarios(spec)) == 1


class TestRegistration:
    def test_register_makes_variants_retrievable(self):
        spec = GeneratorSpec(base="smoke-t2", axes=(("receivers", (3,)),))
        batch = generate_scenarios(spec, register=True)
        try:
            assert len(batch) == 1
            assert get_scenario(batch[0].name) == batch[0]
            # Re-running the same spec is idempotent.
            generate_scenarios(spec, register=True)
        finally:
            for d in batch:
                unregister_scenario(d.name)

    def test_unregistered_generation_leaves_registry_alone(self):
        from repro.scenarios import scenario_names

        before = scenario_names()
        generate_scenarios(GeneratorSpec(base="smoke-t2", axes=AXES))
        assert scenario_names() == before
