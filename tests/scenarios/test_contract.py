"""The dual-engine validation/replay contract, run for real.

This is the tier-1 face of the ``scenario-contracts`` CI job: every
catalog entry replays deterministically, and every entry that declares
the vectorized engine matches the DES byte-for-byte at its canonical
seeds.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    get_scenario,
    list_scenarios,
    validate_catalog,
    validate_scenario,
)

#: One canonical seed keeps the full-catalog sweep fast in tier-1; CI's
#: scenario-contracts job runs every declared seed.
QUICK_SEED = (7,)


def test_full_catalog_contract_holds():
    reports = validate_catalog(seeds=QUICK_SEED)
    assert len(reports) == len(list_scenarios())
    failed = [r.name for r in reports if not r.passed]
    assert failed == [], [
        m for r in reports for m in r.mismatches
    ]


def test_report_shape_for_dual_engine_entry():
    report = validate_scenario(get_scenario("smoke-t2"))
    assert report.passed
    assert report.engines == ("des", "vectorized")
    assert report.seeds == get_scenario("smoke-t2").seeds
    # Per seed: one replay pair + one vectorized-vs-des pair.
    assert report.comparisons == 2 * len(report.seeds)
    assert report.engine_exclusion is None


def test_report_shape_for_des_only_entry():
    # The catalog is vectorized-complete, so synthesise a des-only
    # descriptor (constructed directly, as registration would demand a
    # dual-engine declaration for an on-fast-path protocol).
    base = get_scenario("crowdsensing-tesla-t2")
    descriptor = replace(
        base,
        name="contract-test-des-only",
        engines=("des",),
        engine_exclusion="synthetic des-only entry for report-shape test",
    )
    report = validate_scenario(descriptor, seeds=QUICK_SEED)
    assert report.passed
    assert report.engines == ("des",)
    assert report.comparisons == 1  # replay pair only
    assert report.engine_exclusion


def test_seed_override_is_honoured():
    report = validate_scenario(get_scenario("smoke-t2"), seeds=(99,))
    assert report.seeds == (99,)
    assert report.passed


def test_empty_seed_override_rejected():
    with pytest.raises(ConfigurationError, match="seeds"):
        validate_scenario(get_scenario("smoke-t2"), seeds=())


def test_named_subset_validates_in_given_order():
    names = ["remote-id-t2", "smoke-t2"]
    reports = validate_catalog(names=names, seeds=QUICK_SEED)
    assert [r.name for r in reports] == names


def test_contract_actually_detects_divergence():
    """A descriptor whose engines disagree must fail, not pass quietly.

    Synthesised: pretend a des-only protocol is vectorized-contracted
    by bypassing registration validation (construct the descriptor
    directly) — the two engines genuinely diverge there, and the
    contract has to say so.
    """
    base = get_scenario("smoke-t2")
    fleet_misconfig = replace(
        base,
        name="contract-test-divergent",
        config=replace(base.config, disclosure_delay=3),
        # Vectorized fast path assumes the canonical two-phase timing;
        # a 3-interval disclosure delay still runs on both engines, so
        # use summaries from different *configs* instead: compare des
        # against a vectorized run of the same config — which matches.
    )
    # The honest check: validate passes for a consistent descriptor...
    assert validate_scenario(fleet_misconfig, seeds=QUICK_SEED).passed
    # ...and the mismatch plumbing is exercised via a doctored summary
    # comparison below.
    from repro.scenarios import contract as contract_mod

    real_summary = contract_mod._summary
    calls = {"n": 0}

    def doctored(result):
        calls["n"] += 1
        summary = real_summary(result)
        if calls["n"] == 3:  # the cross-engine comparison
            return ("doctored",)
        return summary

    contract_mod._summary = doctored
    try:
        report = validate_scenario(base, seeds=QUICK_SEED)
    finally:
        contract_mod._summary = real_summary
    assert not report.passed
    assert any("diverged" in m for m in report.mismatches)
