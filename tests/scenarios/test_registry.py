"""The scenario registry: registration, validation, lookup, filters."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ScenarioDescriptor,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.sim.scenario import ScenarioConfig


@pytest.fixture
def scratch_name():
    name = "registry-test-scratch"
    unregister_scenario(name)
    yield name
    unregister_scenario(name)


class TestRegistration:
    def test_decorator_registers_and_returns_builder(self, scratch_name):
        @register_scenario(name=scratch_name, tier="T1", seeds=(3,))
        def build():
            return ScenarioConfig(protocol="dap", intervals=4)

        assert build().protocol == "dap"  # builder still usable
        descriptor = get_scenario(scratch_name)
        assert descriptor.tier == "T1"
        assert descriptor.seeds == (3,)
        assert descriptor.family == "crowdsensing"  # derived from config
        assert descriptor.engines == ("des", "vectorized")
        assert descriptor.generated is False

    def test_descriptor_is_immutable(self, scratch_name):
        @register_scenario(name=scratch_name, tier="T0", seeds=(1,))
        def build():
            return ScenarioConfig()

        descriptor = get_scenario(scratch_name)
        with pytest.raises(dataclasses.FrozenInstanceError):
            descriptor.tier = "T3"

    def test_reregistration_identical_is_idempotent(self, scratch_name):
        def build():
            return ScenarioConfig()

        decorate = register_scenario(
            name=scratch_name, tier="T0", seeds=(1,)
        )
        decorate(build)
        decorate(build)  # same definition: no error
        assert get_scenario(scratch_name).tier == "T0"

    def test_reregistration_conflicting_rejected(self, scratch_name):
        register_scenario(name=scratch_name, tier="T0", seeds=(1,))(
            ScenarioConfig
        )
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(name=scratch_name, tier="T1", seeds=(1,))(
                ScenarioConfig
            )


class TestValidation:
    def _attempt(self, **kwargs):
        defaults = {
            "name": "registry-test-scratch",
            "tier": "T0",
            "seeds": (1,),
        }
        defaults.update(kwargs)
        return register_scenario(**defaults)(ScenarioConfig)

    def test_name_must_be_kebab_case(self):
        for bad in ("CamelCase", "under_score", "-leading", "double--dash"):
            with pytest.raises(ConfigurationError, match="kebab-case"):
                register_scenario(name=bad, tier="T0", seeds=(1,))(
                    ScenarioConfig
                )

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError, match="tier"):
            self._attempt(tier="T7")

    def test_empty_or_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigurationError, match="seed"):
            self._attempt(seeds=())
        with pytest.raises(ConfigurationError, match="duplicate"):
            self._attempt(seeds=(5, 5))

    def test_des_engine_is_mandatory(self):
        with pytest.raises(ConfigurationError, match="'des'"):
            self._attempt(engines=("vectorized",))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            self._attempt(engines=("des", "quantum"))

    def test_every_family_registers_on_the_fast_path(self, scratch_name):
        # The vectorized engine is catalog-complete: a dual-engine
        # declaration is accepted for every protocol family (the
        # registry's off-fast-path guard stays as a seam for future
        # protocols).
        register_scenario(name=scratch_name, tier="T0", seeds=(1,))(
            lambda: ScenarioConfig(protocol="tesla")
        )
        assert get_scenario(scratch_name).supports_engine("vectorized")

    def test_des_only_requires_exclusion_reason(self):
        with pytest.raises(ConfigurationError, match="engine_exclusion"):
            self._attempt(engines=("des",))

    def test_exclusion_with_vectorized_rejected(self):
        with pytest.raises(ConfigurationError, match="pick one"):
            self._attempt(
                engines=("des", "vectorized"), engine_exclusion="why not"
            )

    def test_des_only_with_reason_accepted(self, scratch_name):
        register_scenario(
            name=scratch_name,
            tier="T0",
            seeds=(1,),
            engines=("des",),
            engine_exclusion="single-level protocols walk per-receiver",
        )(lambda: ScenarioConfig(protocol="tesla"))
        descriptor = get_scenario(scratch_name)
        assert not descriptor.supports_engine("vectorized")
        assert descriptor.engine_exclusion


class TestLookup:
    def test_unknown_scenario_lists_names(self):
        with pytest.raises(ConfigurationError, match="smoke-t2"):
            get_scenario("no-such-scenario")

    def test_scenario_names_sorted(self):
        names = scenario_names()
        assert list(names) == sorted(names)
        assert "fig5-t2" in names

    def test_list_scenarios_filters(self):
        assert all(
            d.family == "remote-id" for d in list_scenarios(family="remote-id")
        )
        assert all(d.tier == "T3" for d in list_scenarios(tier="T3"))
        assert all(
            d.supports_engine("vectorized")
            for d in list_scenarios(engine="vectorized")
        )
        assert all(
            d.config.protocol == "tesla_pp"
            for d in list_scenarios(protocol="tesla_pp")
        )

    def test_filters_compose(self):
        rows = list_scenarios(family="crowdsensing", tier="T2")
        assert rows
        for d in rows:
            assert (d.family, d.tier) == ("crowdsensing", "T2")

    def test_supports_engine(self):
        descriptor = get_scenario("smoke-t2")
        assert descriptor.supports_engine("des")
        assert descriptor.supports_engine("vectorized")
        assert not descriptor.supports_engine("quantum")


def test_descriptor_direct_construction_validates_family():
    with pytest.raises(ConfigurationError, match="family"):
        from repro.scenarios.registry import _register

        _register(
            ScenarioDescriptor(
                name="registry-test-scratch",
                family="carrier-pigeon",
                tier="T0",
                engines=("des", "vectorized"),
                seeds=(1,),
                config=ScenarioConfig(),
            )
        )
