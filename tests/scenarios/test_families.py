"""The protocol-family tables: one exported mapping, used everywhere.

Satellite check for the registry PR: the family tables that used to be
duplicated across scenario.py / fleet.py / harness.py now live in
``repro.scenarios.families``, and the scenario.py docstring table is
kept honest against the mapping here.
"""

from __future__ import annotations

import re

import pytest

import repro.sim.scenario as scenario_mod
from repro.errors import ConfigurationError
from repro.scenarios.families import (
    ALL_PROTOCOLS,
    ENGINES,
    MULTI_LEVEL,
    NET_PROTOCOLS,
    PROTOCOL_FAMILIES,
    SINGLE_LEVEL,
    TIER_NAMES,
    TWO_PHASE,
    VECTORIZED_PROTOCOLS,
    WORKLOADS,
    family_of,
    protocols_in_family,
)


class TestMapping:
    def test_every_protocol_has_a_family(self):
        assert set(ALL_PROTOCOLS) == set(PROTOCOL_FAMILIES)

    def test_family_groups_partition_the_protocols(self):
        groups = set(TWO_PHASE) | set(SINGLE_LEVEL) | set(MULTI_LEVEL)
        assert groups == set(ALL_PROTOCOLS)
        assert len(TWO_PHASE) + len(SINGLE_LEVEL) + len(MULTI_LEVEL) == len(
            ALL_PROTOCOLS
        )

    def test_family_of(self):
        assert family_of("dap") == "two-phase"
        assert family_of("tesla") == "single-level"
        assert family_of("edrp") == "multi-level"

    def test_family_of_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            family_of("carrier-pigeon")

    def test_protocols_in_family(self):
        assert protocols_in_family("two-phase") == TWO_PHASE
        with pytest.raises(ConfigurationError):
            protocols_in_family("no-such-family")

    def test_engine_subsets(self):
        assert VECTORIZED_PROTOCOLS == ALL_PROTOCOLS
        assert NET_PROTOCOLS == TWO_PHASE
        assert ENGINES == ("des", "vectorized")

    def test_vocabulary_constants(self):
        assert TIER_NAMES == ("T0", "T1", "T2", "T3")
        assert WORKLOADS == ("crowdsensing", "vehicular-beacon", "remote-id")


class TestConsumersAgree:
    def test_scenario_module_reexports(self):
        assert scenario_mod.ALL_PROTOCOLS is ALL_PROTOCOLS

    def test_fleet_supported_protocols(self):
        from repro.sim.fleet import SUPPORTED_PROTOCOLS

        assert SUPPORTED_PROTOCOLS == VECTORIZED_PROTOCOLS

    def test_harness_protocols(self):
        from repro.net.harness import _NET_PROTOCOLS

        assert _NET_PROTOCOLS == NET_PROTOCOLS


def test_scenario_docstring_table_matches_mapping():
    """The human-readable table in scenario.py tracks the real mapping.

    Parses the reST table rows out of the module docstring and checks
    each (name, family) pair against PROTOCOL_FAMILIES — so the table
    can never silently drift when a protocol is added or refiled.
    """
    doc = scenario_mod.__doc__
    assert doc is not None
    rows = {}
    for line in doc.splitlines():
        match = re.match(
            r"^(\w+)\s+(two-phase|single-level|multi-level)\s+\S", line
        )
        if match:
            rows[match.group(1)] = match.group(2)
    assert rows == dict(PROTOCOL_FAMILIES)
