"""The built-in catalog: acceptance-level shape assertions.

The ISSUE's floor: >= 12 scenarios spanning all four tiers and at
least three workload families, paper figures present as entries.
"""

from __future__ import annotations

from repro.scenarios import get_scenario, list_scenarios
from repro.scenarios.families import TIER_NAMES, WORKLOADS


def test_catalog_meets_the_floor():
    catalog = list_scenarios()
    assert len(catalog) >= 12
    assert {d.tier for d in catalog} == set(TIER_NAMES)
    assert {d.family for d in catalog} == set(WORKLOADS)


def test_catalog_names_are_unique_and_sorted():
    names = [d.name for d in list_scenarios()]
    assert names == sorted(names)
    assert len(names) == len(set(names))


def test_paper_figures_are_catalog_entries():
    fig5 = get_scenario("fig5-t2")
    assert fig5.tier == "T2"
    assert fig5.config.attack_fraction == 0.5
    assert "Fig. 5" in fig5.provenance

    fig6 = get_scenario("fig6-evolution-t3")
    fig7 = get_scenario("fig7-optimal-t3")
    fig8 = get_scenario("fig8-naive-t3")
    for descriptor in (fig6, fig7, fig8):
        assert descriptor.tier == "T3"
        assert descriptor.config.attack_fraction == 0.8
    # Fig. 7 runs the optimal m* = 13 vs Fig. 8's naive over-buffering.
    assert fig7.config.buffers == 13
    assert fig8.config.buffers > fig7.config.buffers


def test_every_entry_names_its_seeds_and_tier_knobs():
    from repro.scenarios.tiers import tier

    for descriptor in list_scenarios():
        assert descriptor.seeds
        spec = tier(descriptor.tier)
        assert descriptor.config.attack_fraction == spec.attack_fraction
        assert descriptor.config.loss_probability == spec.loss_probability


def test_des_only_entries_all_say_why():
    for descriptor in list_scenarios():
        if not descriptor.supports_engine("vectorized"):
            assert descriptor.engine_exclusion, descriptor.name


def test_new_families_have_storm_entries():
    assert get_scenario("vehicular-beacon-storm-t3").tier == "T3"
    assert get_scenario("remote-id-storm-t3").tier == "T3"
