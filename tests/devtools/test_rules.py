"""Fixture-corpus tests: every rule fails its known-bad snippet and
passes its known-good one, at the logical path that puts the snippet in
the rule's scope."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import check_source
from repro.devtools.rules import ALL_RULES, rule_catalog

FIXTURES = Path(__file__).parent / "fixtures"

#: rule code -> (logical path used for scoping, violations in the bad
#: fixture). The paths deliberately sit *outside* the real package
#: files so the corpus keeps working however the tree evolves.
CASES = {
    "RPL001": ("repro/protocols/fixture_mod.py", 2),
    "RPL002": ("repro/sim/fixture_mod.py", 4),
    "RPL003": ("repro/net/fixture_mod.py", 2),
    "RPL004": ("repro/analysis/fixture_mod.py", 3),
    "RPL005": ("repro/sim/fixture_mod.py", 4),
    "RPL006": ("repro/game/fixture_mod.py", 1),
    "RPL007": ("repro/scenarios/fixture_mod.py", 4),
    "RPL008": ("repro/sim/fixture_mod.py", 3),
    "RPL009": ("repro/protocols/fixture_mod.py", 4),
}


def fixture_source(code: str, kind: str) -> str:
    path = FIXTURES / f"{code.lower()}_{kind}.py"
    return path.read_text(encoding="utf-8")


@pytest.mark.parametrize("code", sorted(CASES))
def test_bad_fixture_fails(code):
    logical, expected = CASES[code]
    violations = check_source(
        fixture_source(code, "bad"), logical, select=[code]
    )
    assert len(violations) == expected, [v.format() for v in violations]
    assert {v.rule for v in violations} == {code}


@pytest.mark.parametrize("code", sorted(CASES))
def test_good_fixture_passes(code):
    logical, _ = CASES[code]
    violations = check_source(
        fixture_source(code, "good"), logical, select=[code]
    )
    assert violations == [], [v.format() for v in violations]


@pytest.mark.parametrize("code", sorted(CASES))
def test_bad_fixture_is_clean_outside_rule_scope(code):
    """Scoped rules ignore files outside their directories."""
    violations = check_source(
        fixture_source(code, "bad"), "not_a_package/module.py", select=[code]
    )
    assert violations == []


def test_rpl001_allowlists_the_kernel_modules():
    """The kernels themselves may (must) touch the primitives."""
    source = fixture_source("rpl001", "bad")
    for allowed in ("repro/crypto/kernels.py", "repro/engine/hashing.py"):
        assert check_source(source, allowed, select=["RPL001"]) == []


def test_rpl002_seeded_random_is_fine_in_scope():
    source = "import random\nrng = random.Random(7)\n"
    assert check_source(source, "repro/sim/x.py", select=["RPL002"]) == []


def test_rpl002_catches_aliased_imports():
    source = "from random import random as rnd\n\n\ndef f():\n    return rnd()\n"
    violations = check_source(source, "repro/game/x.py", select=["RPL002"])
    assert len(violations) == 1


def test_rpl002_catches_datetime_chain():
    source = "import datetime\n\n\ndef f():\n    return datetime.datetime.now()\n"
    violations = check_source(source, "repro/crypto/x.py", select=["RPL002"])
    assert len(violations) == 1


def test_rpl003_flags_from_import_sleep():
    source = (
        "from time import sleep\n\n\nasync def pump():\n    sleep(1)\n"
    )
    violations = check_source(source, "repro/net/x.py", select=["RPL003"])
    assert len(violations) == 1


def test_rpl004_flags_initializer_lambda_in_any_call():
    source = (
        "def build(pool_cls):\n"
        "    return pool_cls(initializer=lambda: None)\n"
    )
    violations = check_source(
        source, "repro/engine/x.py", select=["RPL004"]
    )
    assert len(violations) == 1


def test_rpl004_cluster_fixture_flags_fork_primitives():
    """The coordinator fixture: os.fork + set_start_method('fork') +
    get_context('fork') are each one violation."""
    violations = check_source(
        fixture_source("rpl004_cluster", "bad"),
        "repro/cluster/fixture_mod.py",
        select=["RPL004"],
    )
    assert len(violations) == 3, [v.format() for v in violations]
    messages = " ".join(v.message for v in violations)
    assert "os.fork" in messages
    assert "spawn" in messages


def test_rpl004_cluster_fixture_spawn_style_passes():
    violations = check_source(
        fixture_source("rpl004_cluster", "good"),
        "repro/cluster/fixture_mod.py",
        select=["RPL004"],
    )
    assert violations == [], [v.format() for v in violations]


def test_rpl004_spawn_context_is_allowed():
    source = (
        "import multiprocessing\n"
        "ctx = multiprocessing.get_context('spawn')\n"
    )
    assert check_source(source, "repro/engine/x.py", select=["RPL004"]) == []


def test_rpl004_flags_method_keyword_fork():
    source = (
        "from multiprocessing import set_start_method\n"
        "set_start_method(method='fork')\n"
    )
    violations = check_source(
        source, "repro/cluster/x.py", select=["RPL004"]
    )
    assert len(violations) == 1


def test_rpl005_marker_applies_to_decorated_class():
    source = (
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "# reprolint: cache-keyed\n"
        "@dataclass(frozen=True)\n"
        "class Opted:\n"
        "    knob = 3\n"
    )
    violations = check_source(source, "repro/sim/x.py", select=["RPL005"])
    assert len(violations) == 1
    assert "knob" in violations[0].message


def test_rpl006_reraising_boundary_is_allowed():
    source = (
        "def boundary(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception as exc:\n"
        "        raise RuntimeError('wrapped') from exc\n"
    )
    assert check_source(source, "repro/game/x.py", select=["RPL006"]) == []


def test_rpl007_names_the_missing_keywords():
    source = (
        "from repro.scenarios import register_scenario\n"
        "\n"
        "\n"
        "@register_scenario(name='x', seeds=(7,))\n"
        "def _x():\n"
        "    return None\n"
    )
    violations = check_source(
        source, "repro/scenarios/x.py", select=["RPL007"]
    )
    assert len(violations) == 1
    assert "tier=" in violations[0].message
    assert "seeds=" not in violations[0].message


def test_rule_catalog_covers_all_rules():
    catalog = rule_catalog()
    assert len(catalog) == len(ALL_RULES) == 9
    codes = [code for code, _name, _description in catalog]
    assert codes == sorted(codes)
    assert codes[0] == "RPL001" and codes[-1] == "RPL009"
    for _code, name, description in catalog:
        assert name and description
