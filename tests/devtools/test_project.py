"""Whole-program pass: index construction, the RPL010..RPL012 fixture
corpus, per-file rules still firing under ``--project``, and the
project-level self-clean gate."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import lint_paths
from repro.devtools.project import (
    build_index,
    check_project_sources,
    module_name_for,
)
from repro.devtools.project_rules import PROJECT_RULES, project_rule_catalog

FIXTURES = Path(__file__).parent / "fixtures"
ROOT = Path(__file__).resolve().parent.parent.parent

#: project rule code -> (logical path in scope, violations in the bad
#: fixture). Counts are pinned: each shape the rule documents fires
#: exactly once in its fixture.
PROJECT_CASES = {
    "RPL010": ("repro/sim/fixture_mod.py", 3),
    "RPL011": ("repro/perf/fixture_mod.py", 3),
    "RPL012": ("repro/cluster/fixture_mod.py", 4),
}


def fixture_source(code: str, kind: str) -> str:
    path = FIXTURES / f"{code.lower()}_{kind}.py"
    return path.read_text(encoding="utf-8")


# -- fixture corpus ---------------------------------------------------------


@pytest.mark.parametrize("code", sorted(PROJECT_CASES))
def test_bad_fixture_fails(code):
    logical, expected = PROJECT_CASES[code]
    violations = check_project_sources(
        {logical: fixture_source(code, "bad")}, select=[code]
    )
    assert len(violations) == expected, [v.format() for v in violations]
    assert {v.rule for v in violations} == {code}


@pytest.mark.parametrize("code", sorted(PROJECT_CASES))
def test_good_fixture_passes(code):
    logical, _ = PROJECT_CASES[code]
    violations = check_project_sources(
        {logical: fixture_source(code, "good")}, select=[code]
    )
    assert violations == [], [v.format() for v in violations]


@pytest.mark.parametrize("code", sorted(PROJECT_CASES))
def test_bad_fixture_is_clean_outside_rule_scope(code):
    violations = check_project_sources(
        {"not_a_package/module.py": fixture_source(code, "bad")},
        select=[code],
    )
    assert violations == []


def test_project_rules_honour_suppressions():
    logical, expected = PROJECT_CASES["RPL010"]
    source = fixture_source("RPL010", "bad").replace(
        "def dropped(values, seed):",
        "def dropped(values, seed):  # reprolint: disable=RPL010",
    )
    violations = check_project_sources({logical: source}, select=["RPL010"])
    assert len(violations) == expected - 1


# -- index mechanics --------------------------------------------------------


def test_module_name_for():
    assert module_name_for("repro/sim/fleet.py") == "repro.sim.fleet"
    assert module_name_for("repro/sim/__init__.py") == "repro.sim"
    assert (
        module_name_for("benchmarks/bench_kernels.py")
        == "benchmarks.bench_kernels"
    )


def test_rpl010_resolves_calls_across_modules():
    """The unthreaded-callee shape fires on a from-import of another
    indexed module — the cross-file case no per-file rule can see."""
    sources = {
        "repro/sim/provider.py": "def make(seed=0):\n    return seed\n",
        "repro/sim/consumer.py": (
            "from repro.sim.provider import make\n"
            "\n"
            "def run(seed):\n"
            "    base = seed + 1\n"
            "    return make(), base\n"
        ),
    }
    violations = check_project_sources(sources, select=["RPL010"])
    assert len(violations) == 1, [v.format() for v in violations]
    assert violations[0].path == "repro/sim/consumer.py"
    assert "make()" in violations[0].message


def test_rpl010_resolves_module_alias_calls():
    sources = {
        "repro/sim/provider.py": "def make(seed=0):\n    return seed\n",
        "repro/sim/consumer.py": (
            "import repro.sim.provider as provider\n"
            "\n"
            "def run(seed):\n"
            "    child = seed + 1\n"
            "    good = provider.make(child)\n"
            "    bad = provider.make()\n"
            "    return good, bad\n"
        ),
    }
    violations = check_project_sources(sources, select=["RPL010"])
    assert len(violations) == 1, [v.format() for v in violations]
    assert violations[0].line == 6


def test_rpl012_sees_producer_and_consumer_in_different_modules():
    sources = {
        "repro/cluster/sender.py": (
            "def announce(stream):\n"
            '    stream.send({"type": "hello", "token": 1})\n'
        ),
        "repro/cluster/receiver.py": (
            "def handle(message):\n"
            '    return message["token"]\n'
        ),
    }
    assert check_project_sources(sources, select=["RPL012"]) == []
    sources["repro/cluster/receiver.py"] = (
        "def handle(message):\n"
        '    return message["tokenn"]\n'
    )
    violations = check_project_sources(sources, select=["RPL012"])
    codes = sorted(v.message.split("'")[1] for v in violations)
    assert codes == ["token", "tokenn"], [v.format() for v in violations]


def test_project_rule_catalog():
    catalog = project_rule_catalog()
    assert [code for code, _, _ in catalog] == ["RPL010", "RPL011", "RPL012"]
    assert len(PROJECT_RULES) == 3


# -- per-file rules under the project pass ----------------------------------


def _write_fixture_tree(tmp_path: Path) -> Path:
    """A src-like tree holding the RPL007/RPL009 bad fixtures at their
    scoped paths, to prove the per-file corpus still fires when the
    whole-program pass is on."""
    for code, rel in (
        ("rpl007", "repro/scenarios/fixture_mod.py"),
        ("rpl009", "repro/protocols/fixture_mod.py"),
    ):
        target = tmp_path / "src" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            (FIXTURES / f"{code}_bad.py").read_text(encoding="utf-8")
        )
    return tmp_path / "src"


def test_file_rules_still_fire_under_project_pass(tmp_path):
    tree = _write_fixture_tree(tmp_path)
    report = lint_paths([tree], project=True)
    per_rule = {}
    for violation in report.violations:
        per_rule.setdefault(violation.rule, 0)
        per_rule[violation.rule] += 1
    assert per_rule.get("RPL007") == 4, per_rule
    assert per_rule.get("RPL009") == 4, per_rule
    assert "RPL010" in report.rules and "RPL012" in report.rules


def test_project_select_requires_project_flag(tmp_path):
    tree = _write_fixture_tree(tmp_path)
    with pytest.raises(ValueError, match="--project"):
        lint_paths([tree], select=["RPL010"])
    report = lint_paths([tree], select=["RPL010"], project=True)
    assert report.rules == ("RPL010",)


# -- the tree is clean under the whole-program pass -------------------------


def test_src_and_benchmarks_are_project_clean():
    report = lint_paths(
        [ROOT / "src", ROOT / "benchmarks"], project=True
    )
    assert report.files_checked > 80
    assert len(report.rules) == 12
    assert report.violations == (), "\n" + report.format_text()
