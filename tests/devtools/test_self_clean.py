"""The tier-1 invariant gate: the shipped tree passes its own linter.

This is the test that turns the RPL rules into a pre-merge gate even
without CI: a stray ``hashlib`` call, an unseeded RNG in ``sim/``, a
blocking call in an async transport path, or a cache-key-invisible
config knob fails ``pytest`` here with the full violation listing.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.devtools.lint import lint_paths

ROOT = Path(__file__).resolve().parent.parent.parent


def test_src_and_benchmarks_are_reprolint_clean():
    report = lint_paths([ROOT / "src", ROOT / "benchmarks"])
    assert report.files_checked > 80
    assert report.violations == (), "\n" + report.format_text()


def test_module_entry_point_exits_zero():
    """`python -m repro.devtools.lint src` — the CI invocation."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "src", "benchmarks"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 violations" in result.stdout
