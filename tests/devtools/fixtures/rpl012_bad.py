"""Known-bad RPL012 fixture: wire drift, codec drift and kind drift
(checked as if it lived under ``repro/cluster/``)."""


def send_status(stream, worker_id):
    stream.send(
        {
            "type": "status",
            "worker_id": worker_id,
            "hostname": "localhost",
        }
    )


def handle(message):
    worker = message["worker_id"]
    uptime = message.get("uptime", 0.0)
    return worker, uptime


def encode_report(report):
    return {
        "total": report.total,
        "elapsed": report.elapsed,
    }


def decode_report(document):
    return {"total": int(document["total"])}


def first_record(t):
    return {"kind": "probe", "t": t, "pending": 0}


def second_record(t):
    return {"kind": "probe", "t": t}
