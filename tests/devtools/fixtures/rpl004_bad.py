"""Known-bad RPL004 fixture: unpicklable engine payloads and a
module-level file handle (checked as if it lived under
``repro/analysis/``). Never imported — only parsed."""

from repro.engine import run_tasks
from repro.engine.spec import ExperimentSpec

LOG = open("run.log", "a")


def sweep(tasks):
    def local_worker(task):
        return task * 2

    spec = ExperimentSpec(fn=lambda task: task, tasks=tuple(tasks))
    results = run_tasks(local_worker, tasks)
    return spec, results
