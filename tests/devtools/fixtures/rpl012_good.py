"""Known-good RPL012 fixture: produced and consumed fields line up,
codec pairs round-trip, kinds share one schema."""

_RECORD_FIELDS = ("t", "pending")


def send_status(stream, worker_id):
    stream.send({"type": "status", "worker_id": worker_id})


def send_record(stream, t, pending):
    stream.send({"type": "record", "t": t, "pending": pending})


def handle(message):
    return message["worker_id"]


def handle_record(message):
    return [message[name] for name in _RECORD_FIELDS]


def encode_report(report):
    return {
        "total": report.total,
        "elapsed": report.elapsed,
    }


def decode_report(document):
    return {
        "total": int(document["total"]),
        "elapsed": float(document["elapsed"]),
    }


def first_record(t):
    return {"kind": "probe", "t": t, "pending": 0}


def second_record(t):
    return {"kind": "probe", "t": t, "pending": 1}
