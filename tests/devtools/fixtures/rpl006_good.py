"""Known-good RPL006 fixture: broad excepts are fault boundaries that
wrap and re-raise; anything narrower may handle locally."""

from repro.errors import TaskError


def boundary(callback, label):
    try:
        return callback()
    except Exception as exc:
        raise TaskError(f"{label} failed: {exc}", label=label, index=0) from exc


def narrow(callback):
    try:
        return callback()
    except ValueError:
        return None
