"""Known-bad RPL004 fixture: raw fork primitives in coordinator-style
code (checked as if it lived under ``repro/cluster/``). A forked child
of the multi-threaded coordinator inherits held locks. Never imported
— only parsed."""

import multiprocessing
import os
from multiprocessing import set_start_method


def spawn_worker_the_wrong_way():
    pid = os.fork()
    if pid == 0:
        raise SystemExit(0)
    return pid


def pool_the_wrong_way():
    set_start_method("fork")
    context = multiprocessing.get_context("fork")
    return context.Pool(2)
