"""Known-bad RPL001 fixture: direct primitive hashing outside the
kernel allowlist (checked as if it lived under ``repro/protocols/``)."""

import hashlib
import hmac


def tag_payload(payload: bytes, key: bytes) -> bytes:
    mac = hmac.new(key, payload, "sha256").digest()
    return hashlib.sha256(payload + mac).digest()
