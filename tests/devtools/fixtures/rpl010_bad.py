"""Known-bad RPL010 fixture: the three seed-threading faults (checked
as if it lived under ``repro/sim/``)."""

import random


def build_stream(seed=0):
    return random.Random(seed)


def dropped(values, seed):
    total = 0.0
    for value in values:
        total += value
    return total


def unthreaded(count, seed):
    rng = random.Random(seed)
    streams = [build_stream() for _ in range(count)]
    return rng, streams


def rederived(seed):
    rng = random.Random(seed)
    other = random.Random(1234)
    return rng.random() + other.random()
