"""RPL007 good fixture: explicit tier and seeds at every site."""

from repro.scenarios import register_scenario
from repro.scenarios import registry


@register_scenario(name="explicit", tier="T2", seeds=(7, 11))
def _explicit():
    return None


@registry.register_scenario(
    name="explicit-attr",
    tier="T3",
    seeds=(7,),
    engines=("des",),
    engine_exclusion="fixture",
)
def _explicit_attr():
    return None


def register_other(name):
    """A different callable named similarly is not a registration."""
    return name
