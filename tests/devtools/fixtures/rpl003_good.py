"""Known-good RPL003 fixture: awaited sleeps; blocking work confined
to sync helpers destined for an executor."""

import asyncio
import time


async def pump() -> None:
    await asyncio.sleep(0.1)


def sync_probe() -> float:
    # Sync code may block freely; only async bodies are constrained.
    time.sleep(0.0)
    return 0.0


async def offload() -> None:
    def blocking_section() -> None:
        time.sleep(0.0)

    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, blocking_section)
