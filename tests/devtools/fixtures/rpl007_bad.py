"""RPL007 bad fixture: registrations hiding their tier or seeds."""

from repro.scenarios import register_scenario
from repro.scenarios import registry

_DEFAULTS = {"tier": "T2", "seeds": (7,)}


@register_scenario(name="implicit-everything")
def _no_tier_no_seeds():
    return None


@register_scenario(name="implicit-seeds", tier="T1")
def _no_seeds():
    return None


@registry.register_scenario(name="implicit-tier", seeds=(7, 11))
def _no_tier():
    return None


@register_scenario(name="kwargs-smuggled", **_DEFAULTS)
def _smuggled():
    return None
