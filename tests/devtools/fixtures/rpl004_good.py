"""Known-good RPL004 fixture: module-level worker functions and
scoped file handles."""

from repro.engine import run_tasks
from repro.engine.spec import ExperimentSpec


def module_worker(task):
    return task * 2


def sweep(tasks):
    spec = ExperimentSpec(fn=module_worker, tasks=tuple(tasks))
    results = run_tasks(module_worker, tasks)
    return spec, results


def append_line(path, line):
    with open(path, "a") as handle:
        handle.write(line)
