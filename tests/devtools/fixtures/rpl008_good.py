"""Known-good corpus for RPL008: every block released in finally."""

from multiprocessing.shared_memory import SharedMemory


def roundtrip(payload: bytes) -> bytes:
    # Create-side hygiene: close AND unlink in the finally.
    block = SharedMemory(create=True, size=len(payload))
    try:
        block.buf[: len(payload)] = payload
        out = bytes(block.buf[: len(payload)])
    finally:
        block.close()
        block.unlink()
    return out


def attach(name: str) -> bytes:
    # Attach-side hygiene: close (never unlink — the creator owns the
    # segment's lifetime).
    block = SharedMemory(name=name)
    try:
        return bytes(block.buf)
    finally:
        block.close()


def open_block(name: str) -> SharedMemory:
    # Direct return transfers ownership to the caller, where the rule
    # applies to the binding again.
    return SharedMemory(name=name)
