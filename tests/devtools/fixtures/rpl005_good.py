"""Known-good RPL005 fixture: frozen dataclasses with every knob an
annotated field (or an explicit ClassVar)."""

from dataclasses import dataclass
from typing import ClassVar, Tuple


@dataclass(frozen=True)
class ScenarioConfig:
    KNOWN_ENGINES: ClassVar[Tuple[str, ...]] = ("des", "vectorized")
    intervals: int = 30
    engine: str = "des"


# reprolint: cache-keyed
@dataclass(frozen=True)
class OptedInConfig:
    axis: str = "p"
