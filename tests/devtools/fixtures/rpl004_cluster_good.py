"""Known-good RPL004 fixture: fresh worker processes via subprocess
and the spawn start method — what the cluster coordinator actually
does."""

import multiprocessing
import subprocess
import sys


def spawn_worker(host, port):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cluster.worker", "--connect",
         f"{host}:{port}"]
    )


def pool():
    context = multiprocessing.get_context("spawn")
    return context.Pool(2)
