"""RPL009 bad corpus: stray blake2 primitives and scalar MACs in loops."""

import hashlib
from hashlib import blake2s

from repro.crypto.mac import MacScheme, MicroMacScheme


def fast_tag(key: bytes, mac: bytes) -> bytes:
    # direct blake2b: sidesteps kernels.fast_micro_mac and FAST_UMAC
    return hashlib.blake2b(mac, key=key, digest_size=3).digest()


def fast_tag_member(key: bytes, mac: bytes) -> bytes:
    # member-imported blake2s: same bypass through an alias
    return blake2s(mac, key=key, digest_size=3).digest()


def verify_all(scheme: MacScheme, key: bytes, records):
    ok = []
    for message, mac in records:
        # scalar verify in a flood loop: one key-block setup per record
        ok.append(scheme.verify(key, message, mac))
    return ok


def tag_all(micro: MicroMacScheme, key: bytes, macs):
    # scalar compute in a comprehension: same per-call setup cost
    return [micro.compute(key, mac) for mac in macs]
