"""Known-bad RPL005 fixture: a cache-keyed config that is not frozen
and hides a knob in an unannotated class attribute — ``stable_key``
folds dataclass *fields* only, so ``engine`` would silently never
reach the cache key."""

from dataclasses import dataclass


@dataclass
class ScenarioConfig:
    intervals: int = 30
    engine = "des"


# reprolint: cache-keyed
class HandRolledConfig:
    buffers = 4
