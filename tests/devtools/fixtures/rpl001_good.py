"""Known-good RPL001 fixture: hashing routed through the kernels;
``hmac.compare_digest`` is comparison, not hashing, and stays legal."""

import hmac

from repro.crypto.kernels import sha256_digest


def tag_payload(payload: bytes) -> bytes:
    return sha256_digest(payload, prefix=b"fixture|")


def tags_equal(left: bytes, right: bytes) -> bool:
    return hmac.compare_digest(left, right)
