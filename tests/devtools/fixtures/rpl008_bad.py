"""Known-bad corpus for RPL008: shared-memory blocks that leak."""

from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def publish(payload: bytes) -> str:
    # Created and closed, but never unlinked: the /dev/shm segment
    # outlives the process.
    block = SharedMemory(create=True, size=len(payload))
    try:
        block.buf[: len(payload)] = payload
        return block.name
    finally:
        block.close()


def attach(name: str) -> bytes:
    # Attached but never closed: the mapping stays pinned.
    block = shared_memory.SharedMemory(name=name)
    return bytes(block.buf)


def peek(name: str) -> int:
    # Anonymous block: nothing can ever close it.
    return len(SharedMemory(name=name).buf)
