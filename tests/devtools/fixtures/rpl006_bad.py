"""Known-bad RPL006 fixture: a broad except that swallows the failure
(checked as if it lived under ``repro/game/``)."""


def swallow(callback):
    try:
        return callback()
    except Exception:
        return None
