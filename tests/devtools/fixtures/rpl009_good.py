"""RPL009 good corpus: batch APIs and the kernel-routed fast path."""

from repro.crypto import kernels
from repro.crypto.mac import MacScheme, MicroMacScheme


def fast_tag(key: bytes, mac: bytes) -> bytes:
    # the non-faithful fast μMAC goes through the kernel switchboard
    return kernels.fast_micro_mac(key, mac, 24)


def verify_all(scheme: MacScheme, key: bytes, records):
    return scheme.verify_many(key, records)


def tag_all(micro: MicroMacScheme, key: bytes, macs):
    return micro.compute_many(key, macs)


def one_off(scheme: MacScheme, key: bytes, message: bytes) -> bytes:
    # a single scalar compute outside any loop is fine
    return scheme.compute(key, message)
