"""Known-bad RPL002 fixture: four nondeterminism sources (checked as
if it lived under ``repro/sim/``)."""

import random
import time


def jitter() -> float:
    return random.random() + time.time()


def fresh_rng() -> random.Random:
    return random.Random()


def total_load(nodes) -> float:
    total = 0.0
    for load in set(nodes):
        total += load
    return total
