"""Known-bad RPL003 fixture: blocking calls inside async bodies
(checked as if it lived under ``repro/net/``)."""

import subprocess
import time


async def pump() -> None:
    time.sleep(0.1)


async def shell() -> None:
    subprocess.run(["true"], check=False)
