"""Known-bad RPL011 fixture: counter spelling drift and dead reads
(checked as if it lived under ``repro/perf/``)."""


def record(registry):
    registry.incr("sim.packets_sent")
    registry.incr("sim.Packets-Sent")
    registry.observe("sim.latency_seconds", 0.5)


def report(registry):
    dead = registry.counter("sim.packets_lost")
    drifted = registry.counter("sim.latencyseconds")
    return dead + drifted
