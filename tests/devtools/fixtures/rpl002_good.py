"""Known-good RPL002 fixture: seeded RNGs threaded explicitly, sorted
iteration over unordered collections."""

import random


def jitter(rng: random.Random) -> float:
    return rng.random()


def fresh_rng(seed: int) -> random.Random:
    return random.Random(seed)


def total_load(nodes) -> float:
    total = 0.0
    for load in sorted(set(nodes)):
        total += load
    return total
