"""Known-good RPL011 fixture: one spelling per counter, every read
backed by an instrumentation site."""


def record(registry):
    registry.incr("sim.packets_sent")
    registry.incr("sim.packets_lost")
    registry.observe("sim.latency_seconds", 0.5)
    registry.incr("cache.hits")
    registry.incr("cache.misses")


def report(registry):
    sent = registry.counter("sim.packets_sent")
    lost = registry.counter("sim.packets_lost")
    rate = registry.hit_rate("cache.hits", "cache.misses")
    return sent + lost + rate
