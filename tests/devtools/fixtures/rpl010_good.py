"""Known-good RPL010 fixture: every seed is used, threaded to callees
and never re-derived from a literal."""

import random


def build_stream(seed=0):
    return random.Random(seed)


def used(values, seed):
    rng = random.Random(seed)
    total = rng.random()
    for value in values:
        total += value
    return total


def threaded(count, seed):
    rng = random.Random(seed)
    streams = [build_stream(rng.getrandbits(64)) for _ in range(count)]
    return rng, streams


def derived_child(rng):
    child_seed = rng.getrandbits(64)
    return build_stream(child_seed)
