"""Runtime sanitizer suite.

Covers the three sanitizers end to end — determinism draw tracing with
call-site attribution, lock-order tracking, resource lifetimes — plus
the contract every one of them shares with ``repro.perf``: disabled
means *structurally* absent (identity rng, plain stdlib locks, ``None``
optional locks, no-op lifecycle hooks), not merely cheap.
"""

from __future__ import annotations

import random
import threading
import time

from repro.devtools.sanitizers import determinism, locks, resources


def _draw_chain(rng, n=8):
    values = []
    for _ in range(n):
        values.append(rng.random())
    return values


class TestDeterminism:
    def test_disabled_traced_rng_is_identity(self):
        rng = random.Random(7)
        assert determinism.traced_rng(rng, "s") is rng

    def test_traced_draws_are_bit_identical(self):
        bare = random.Random(7)
        with determinism.tracing():
            traced = determinism.traced_rng(random.Random(7), "s")
            assert isinstance(traced, random.Random)
            for _ in range(16):
                assert traced.random() == bare.random()
            assert traced.getrandbits(64) == bare.getrandbits(64)
            assert traced.randrange(10**6) == bare.randrange(10**6)
            items = list(range(32))
            assert traced.choice(items) == bare.choice(items)
            a, b = items[:], items[:]
            traced.shuffle(a)
            bare.shuffle(b)
            assert a == b

    def test_identical_runs_diff_empty(self):
        def run(sanitizer):
            with determinism.tracing(sanitizer):
                _draw_chain(determinism.traced_rng(random.Random(11), "s"))

        first = determinism.DeterminismSanitizer()
        second = determinism.DeterminismSanitizer()
        run(first)
        run(second)
        assert first.trace.total_draws() == 8
        assert first.trace.diff(second.trace) == ()

    def test_corruption_localized_to_exact_call_site(self):
        """Mutating one draw yields exactly one divergence, attributed
        to the frame that asked for the draw."""

        def run(sanitizer):
            with determinism.tracing(sanitizer):
                return _draw_chain(
                    determinism.traced_rng(random.Random(11), "stream")
                )

        reference = determinism.DeterminismSanitizer()
        clean_values = run(reference)
        corrupt = determinism.DeterminismSanitizer(corrupt_draw=5)
        corrupt_values = run(corrupt)
        # The corrupted value genuinely reached the caller.
        assert corrupt_values[5] != clean_values[5]
        assert corrupt_values[:5] == clean_values[:5]

        divergences = reference.trace.diff(corrupt.trace)
        assert len(divergences) == 1
        divergence = divergences[0]
        assert divergence.stream == "stream"
        assert divergence.index == 5
        assert divergence.right.site.endswith(":_draw_chain")
        assert "test_sanitizers.py" in divergence.right.site
        assert corrupt.corrupted_site == divergence.right.site

    def test_scenario_run_is_draw_stable_and_divergence_surfaces(self):
        from repro.sim.scenario import ScenarioConfig, run_scenario

        config = ScenarioConfig(
            protocol="dap", receivers=2, intervals=6, seed=13
        )
        with determinism.tracing() as first:
            run_scenario(config)
        with determinism.tracing() as second:
            run_scenario(config)
        assert first.trace.total_draws() > 0
        assert first.trace.diff(second.trace) == ()

        corrupt = determinism.DeterminismSanitizer(corrupt_draw=4)
        with determinism.tracing(corrupt):
            run_scenario(config)
        divergences = first.trace.diff(corrupt.trace)
        assert divergences, "injected corruption must surface in the diff"
        site = (divergences[0].right or divergences[0].left).site
        assert "repro" in site.replace("\\", "/")
        assert corrupt.corrupted_site is not None

    def test_trace_json_roundtrip_fields(self):
        with determinism.tracing() as sanitizer:
            _draw_chain(determinism.traced_rng(random.Random(3), "s"), n=2)
        document = sanitizer.trace.to_json()
        assert document["total_draws"] == 2
        (first, second) = document["streams"]["s"]
        assert first["method"] == "random"
        assert ":" in first["site"]


class TestLocks:
    def test_disabled_returns_plain_stdlib_locks(self):
        assert type(locks.tracked_lock("x")) is type(threading.Lock())
        assert type(locks.tracked_lock("x", reentrant=True)) is type(
            threading.RLock()
        )
        assert locks.optional_lock("x") is None

    def test_tracking_returns_tracked_locks(self):
        with locks.tracking() as sanitizer:
            lock = locks.tracked_lock("x")
            assert isinstance(lock, locks.TrackedLock)
            optional = locks.optional_lock("y")
            assert isinstance(optional, locks.TrackedLock)
            with lock:
                pass
        assert sanitizer.acquisitions == 1

    def test_inversion_detected(self):
        with locks.tracking() as sanitizer:
            a = locks.tracked_lock("A")
            b = locks.tracked_lock("B")
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        inversions = sanitizer.inversions()
        assert len(inversions) == 1
        assert {inversions[0].first, inversions[0].second} == {"A", "B"}
        assert "test_sanitizers.py" in inversions[0].forward_site

    def test_consistent_order_is_clean(self):
        with locks.tracking() as sanitizer:
            a = locks.tracked_lock("A")
            b = locks.tracked_lock("B")
            for _ in range(3):
                with a:
                    with b:
                        pass
        assert sanitizer.inversions() == ()
        assert sanitizer.acquisitions == 6

    def test_reentrant_acquisition_is_not_an_inversion(self):
        with locks.tracking() as sanitizer:
            lock = locks.tracked_lock("R", reentrant=True)
            with lock:
                with lock:
                    pass
        assert sanitizer.inversions() == ()

    def test_blocking_under_lock_detected(self):
        sanitizer = locks.LockOrderSanitizer(block_threshold=0.01)
        with locks.tracking(sanitizer):
            outer = locks.tracked_lock("outer")
            inner = locks.tracked_lock("inner")
            held = threading.Event()

            def hog():
                with inner:
                    held.set()
                    time.sleep(0.06)

            thread = threading.Thread(target=hog)
            thread.start()
            held.wait()
            with outer:
                with inner:
                    pass
            thread.join()
        assert any(
            blocked.held == "outer" and blocked.acquiring == "inner"
            for blocked in sanitizer.blocked
        ), sanitizer.to_json()

    def test_report_json_shape(self):
        with locks.tracking() as sanitizer:
            a = locks.tracked_lock("A")
            with a:
                pass
        document = sanitizer.to_json()
        assert set(document) >= {"acquisitions", "edges", "inversions"}


class TestResources:
    def test_disabled_hooks_are_noops(self):
        resources.track_resource("shm", "t", "label")
        resources.release_resource("shm", "t")
        assert not resources.enabled()

    def test_leak_reported_with_creation_site(self):
        with resources.tracking() as sanitizer:
            resources.track_resource("socket", "a", "listener :9000")
            resources.track_resource("shm", "b", "mask segment")
            resources.release_resource("socket", "a")
        leaks = sanitizer.leaks()
        assert [leak.kind for leak in leaks] == ["shm"]
        assert leaks[0].label == "mask segment"
        assert "test_sanitizers.py" in leaks[0].site
        assert sanitizer.tracked == 2 and sanitizer.released == 1

    def test_metrics_log_lifecycle_tracked(self, tmp_path):
        from repro.cluster.metrics import MetricsLog

        with resources.tracking() as sanitizer:
            log = MetricsLog(tmp_path / "metrics.jsonl")
            assert sanitizer.tracked == 1
            log.write({"kind": "probe", "t": 0.0})
            log.close()
        assert sanitizer.leaks() == ()
        assert sanitizer.released == 1

    def test_metrics_log_leak_surfaces(self, tmp_path):
        with resources.tracking() as sanitizer:
            from repro.cluster.metrics import MetricsLog

            log = MetricsLog(tmp_path / "metrics.jsonl")
        leaks = sanitizer.leaks()
        assert len(leaks) == 1 and leaks[0].kind == "file"
        assert "metrics.py" in leaks[0].site
        log.close()


class TestDisabledOverhead:
    """Disabled sanitizers must cost nothing measurable.

    The structural asserts are the real contract (the disabled path
    returns the *same* objects plain code uses); the timing bound is a
    deliberately loose tripwire against someone re-introducing work on
    the guarded path.
    """

    def test_disabled_path_is_structurally_absent(self):
        from repro.crypto.kernels import ChainWalkCache
        from repro.crypto.onewayfn import OneWayFunction

        rng = random.Random(1)
        assert determinism.traced_rng(rng, "s") is rng
        assert locks.optional_lock("crypto.walk_cache") is None
        assert ChainWalkCache(OneWayFunction("F"))._lock is None

    def test_disabled_lifecycle_hooks_are_cheap(self):
        n = 50_000
        started = time.perf_counter()
        for _ in range(n):
            resources.track_resource("shm", "t", "x")
            resources.release_resource("shm", "t")
        per_call = (time.perf_counter() - started) / (2 * n)
        # One module-attribute load and an is-None branch; 5 µs is two
        # orders of magnitude above the expected cost, so a real
        # regression (locking, dict churn) trips it while CI noise
        # cannot.
        assert per_call < 5e-6, f"disabled hook costs {per_call * 1e9:.0f}ns"

    def test_disabled_traced_rng_adds_no_draw_overhead(self):
        bare = random.Random(5)
        wrapped = determinism.traced_rng(random.Random(5), "s")
        n = 20_000
        started = time.perf_counter()
        for _ in range(n):
            bare.random()
        bare_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(n):
            wrapped.random()
        wrapped_elapsed = time.perf_counter() - started
        # Identity wrapper: same object, so same cost modulo noise.
        assert wrapped_elapsed < bare_elapsed * 3 + 1e-3
