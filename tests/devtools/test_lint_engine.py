"""Engine tests: suppressions, reporters, exit codes, path mapping."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint import (
    PARSE_ERROR,
    check_source,
    execute,
    lint_paths,
    logical_path_for,
    main,
)

BAD_SIM_SOURCE = "import random\n\n\ndef f():\n    return random.random()\n"
SIM_PATH = "repro/sim/module.py"


def test_violation_found_without_suppression():
    violations = check_source(BAD_SIM_SOURCE, SIM_PATH, select=["RPL002"])
    assert len(violations) == 1
    violation = violations[0]
    assert violation.rule == "RPL002"
    assert violation.line == 5
    assert violation.path == SIM_PATH
    assert "random" in violation.message


def test_inline_suppression_silences_the_line():
    source = BAD_SIM_SOURCE.replace(
        "return random.random()",
        "return random.random()  # reprolint: disable=RPL002",
    )
    assert check_source(source, SIM_PATH, select=["RPL002"]) == []


def test_suppression_on_comment_line_above():
    source = BAD_SIM_SOURCE.replace(
        "    return random.random()",
        "    # reprolint: disable=RPL002 -- fixture justification\n"
        "    return random.random()",
    )
    assert check_source(source, SIM_PATH, select=["RPL002"]) == []


def test_suppression_takes_multiple_codes():
    source = (
        "import random\n"
        "import time\n"
        "\n"
        "\n"
        "def f():\n"
        "    # reprolint: disable=RPL002, RPL006\n"
        "    return random.random() + time.time()\n"
    )
    assert check_source(source, SIM_PATH, select=["RPL002"]) == []


def test_file_wide_suppression():
    source = "# reprolint: disable-file=RPL002\n" + BAD_SIM_SOURCE
    assert check_source(source, SIM_PATH, select=["RPL002"]) == []


def test_suppressing_one_rule_keeps_the_others():
    source = BAD_SIM_SOURCE.replace(
        "return random.random()",
        "return random.random()  # reprolint: disable=RPL001",
    )
    violations = check_source(source, SIM_PATH, select=["RPL002"])
    assert len(violations) == 1


def test_directive_inside_a_string_is_not_a_suppression():
    source = BAD_SIM_SOURCE.replace(
        "def f():",
        'MARKER = "# reprolint: disable-file=RPL002"\n\n\ndef f():',
    )
    violations = check_source(source, SIM_PATH, select=["RPL002"])
    assert len(violations) == 1


def test_parse_error_reports_rpl000():
    violations = check_source("def broken(:\n", SIM_PATH)
    assert len(violations) == 1
    assert violations[0].rule == PARSE_ERROR


def test_unknown_select_code_raises():
    with pytest.raises(ValueError, match="RPL999"):
        check_source(BAD_SIM_SOURCE, SIM_PATH, select=["RPL999"])


def test_logical_path_mapping():
    assert (
        logical_path_for(Path("src/repro/sim/medium.py"))
        == "repro/sim/medium.py"
    )
    assert (
        logical_path_for(Path("/abs/repo/src/repro/net/udp.py"))
        == "repro/net/udp.py"
    )
    assert (
        logical_path_for(Path("benchmarks/bench_kernels.py"))
        == "benchmarks/bench_kernels.py"
    )
    assert logical_path_for(Path("scripts/tool.py")) == "tool.py"


class TestReportsAndExitCodes:
    def _write_tree(self, tmp_path: Path, bad: bool) -> Path:
        tree = tmp_path / "src" / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "clean.py").write_text("VALUE = 3\n")
        if bad:
            (tree / "dirty.py").write_text(BAD_SIM_SOURCE)
        return tmp_path / "src"

    def test_lint_paths_clean(self, tmp_path):
        report = lint_paths([self._write_tree(tmp_path, bad=False)])
        assert report.violations == ()
        assert report.files_checked == 1
        assert report.exit_code == 0

    def test_lint_paths_dirty(self, tmp_path):
        report = lint_paths([self._write_tree(tmp_path, bad=True)])
        assert report.exit_code == 1
        assert [v.rule for v in report.violations] == ["RPL002"]
        assert report.violations[0].path.endswith("dirty.py")

    def test_json_reporter_schema(self, tmp_path):
        report = lint_paths([self._write_tree(tmp_path, bad=True)])
        document = json.loads(report.to_json())
        assert set(document) == {
            "version",
            "files_checked",
            "rules",
            "violations",
            "baselined",
        }
        assert document["baselined"] == 0
        assert document["version"] == 1
        assert document["files_checked"] == 2
        assert document["rules"] == [f"RPL00{i}" for i in range(1, 10)]
        (violation,) = document["violations"]
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "RPL002"
        assert violation["line"] == 5

    def test_text_reporter_format(self, tmp_path):
        report = lint_paths([self._write_tree(tmp_path, bad=True)])
        text = report.format_text()
        assert "dirty.py:5:" in text
        assert "RPL002" in text
        assert text.endswith("1 violation in 2 files (9 rules)")

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = self._write_tree(tmp_path / "a", bad=False)
        dirty = self._write_tree(tmp_path / "b", bad=True)
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert main([str(tmp_path / "missing")]) == 2
        capsys.readouterr()
        assert main([str(clean), "--select", "NOPE99"]) == 2
        assert "NOPE99" in capsys.readouterr().err

    def test_main_json_output(self, tmp_path, capsys):
        dirty = self._write_tree(tmp_path, bad=True)
        assert main([str(dirty), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["violations"]

    def test_main_select_filters_rules(self, tmp_path, capsys):
        dirty = self._write_tree(tmp_path, bad=True)
        assert main([str(dirty), "--select", "RPL001"]) == 0
        out = capsys.readouterr().out
        assert "(1 rules)" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for index in range(1, 10):
            assert f"RPL00{index}" in out

    def test_execute_matches_main(self, tmp_path, capsys):
        dirty = self._write_tree(tmp_path, bad=True)
        assert execute([dirty]) == 1
        capsys.readouterr()


class TestMultiLineSuppressions:
    """A directive anywhere in a multi-line logical statement covers
    the whole statement, and a comment-only directive covers the next
    statement's full span."""

    def test_directive_on_last_physical_line(self):
        source = (
            "import random\n"
            "\n"
            "def build():\n"
            "    return random.Random(\n"
            "    )  # reprolint: disable=RPL002\n"
        )
        assert check_source(source, SIM_PATH, select=["RPL002"]) == []

    def test_directive_on_inner_physical_line(self):
        source = (
            "import random\n"
            "\n"
            "def build():\n"
            "    return random.Random(\n"
            "        # reprolint: disable=RPL002\n"
            "    )\n"
        )
        assert check_source(source, SIM_PATH, select=["RPL002"]) == []

    def test_comment_line_covers_following_multiline_statement(self):
        source = (
            "import random\n"
            "\n"
            "def build():\n"
            "    # reprolint: disable=RPL002\n"
            "    return random.Random(\n"
            "    )\n"
        )
        assert check_source(source, SIM_PATH, select=["RPL002"]) == []

    def test_unsuppressed_multiline_statement_still_fires(self):
        source = (
            "import random\n"
            "\n"
            "def build():\n"
            "    return random.Random(\n"
            "    )\n"
        )
        violations = check_source(source, SIM_PATH, select=["RPL002"])
        assert [v.rule for v in violations] == ["RPL002"]

    def test_directive_does_not_leak_past_the_statement(self):
        source = (
            "import random\n"
            "\n"
            "def build():\n"
            "    a = random.Random(\n"
            "    )  # reprolint: disable=RPL002\n"
            "    b = random.Random()\n"
            "    return a, b\n"
        )
        violations = check_source(source, SIM_PATH, select=["RPL002"])
        assert [v.line for v in violations] == [6]


class TestGithubFormat:
    def _dirty(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "dirty.py").write_text(BAD_SIM_SOURCE)
        return tmp_path / "src"

    def test_workflow_command_lines(self, tmp_path):
        report = lint_paths([self._dirty(tmp_path)])
        text = report.format_github()
        line = text.splitlines()[0]
        assert line.startswith("::error file=")
        assert "title=reprolint RPL002" in line
        assert ",line=5," in line

    def test_main_github_format(self, tmp_path, capsys):
        assert main([str(self._dirty(tmp_path)), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error ")
        assert "1 violation" in out


class TestBaseline:
    def _dirty(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "dirty.py").write_text(BAD_SIM_SOURCE)
        return tmp_path / "src"

    def test_write_then_apply_roundtrip(self, tmp_path, capsys):
        dirty = self._dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(dirty), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main([str(dirty), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_new_violations_still_fail(self, tmp_path, capsys):
        dirty = self._dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(dirty), "--write-baseline", str(baseline)]) == 0
        extra = dirty / "repro" / "sim" / "fresh.py"
        extra.write_text(BAD_SIM_SOURCE)
        capsys.readouterr()
        assert main([str(dirty), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "1 baselined" in out

    def test_baselined_count_in_json(self, tmp_path, capsys):
        dirty = self._dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(dirty), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert (
            main([str(dirty), "--baseline", str(baseline), "--format", "json"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["baselined"] == 1
        assert document["violations"] == []

    def test_unreadable_baseline_is_usage_error(self, tmp_path, capsys):
        dirty = self._dirty(tmp_path)
        broken = tmp_path / "broken.json"
        broken.write_text("not json")
        assert main([str(dirty), "--baseline", str(broken)]) == 2
        assert "cannot read baseline" in capsys.readouterr().err


class TestFaultBoundary:
    """Violations exit 1; crashes and bad arguments exit 2 — CI can
    tell 'the tree is dirty' from 'the linter broke'."""

    def test_internal_failure_exits_two(self, tmp_path, capsys, monkeypatch):
        from repro.devtools import lint as lint_module

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic engine crash")

        monkeypatch.setattr(lint_module, "lint_paths", boom)
        assert lint_module.execute([tmp_path]) == 2
        err = capsys.readouterr().err
        assert "internal reprolint failure" in err
        assert "synthetic engine crash" in err

    def test_project_select_without_project_flag_exits_two(
        self, tmp_path, capsys
    ):
        tree = tmp_path / "src" / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "ok.py").write_text("VALUE = 3\n")
        assert main([str(tmp_path / "src"), "--select", "RPL010"]) == 2
        assert "--project" in capsys.readouterr().err
