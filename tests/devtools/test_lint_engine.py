"""Engine tests: suppressions, reporters, exit codes, path mapping."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint import (
    PARSE_ERROR,
    check_source,
    execute,
    lint_paths,
    logical_path_for,
    main,
)

BAD_SIM_SOURCE = "import random\n\n\ndef f():\n    return random.random()\n"
SIM_PATH = "repro/sim/module.py"


def test_violation_found_without_suppression():
    violations = check_source(BAD_SIM_SOURCE, SIM_PATH, select=["RPL002"])
    assert len(violations) == 1
    violation = violations[0]
    assert violation.rule == "RPL002"
    assert violation.line == 5
    assert violation.path == SIM_PATH
    assert "random" in violation.message


def test_inline_suppression_silences_the_line():
    source = BAD_SIM_SOURCE.replace(
        "return random.random()",
        "return random.random()  # reprolint: disable=RPL002",
    )
    assert check_source(source, SIM_PATH, select=["RPL002"]) == []


def test_suppression_on_comment_line_above():
    source = BAD_SIM_SOURCE.replace(
        "    return random.random()",
        "    # reprolint: disable=RPL002 -- fixture justification\n"
        "    return random.random()",
    )
    assert check_source(source, SIM_PATH, select=["RPL002"]) == []


def test_suppression_takes_multiple_codes():
    source = (
        "import random\n"
        "import time\n"
        "\n"
        "\n"
        "def f():\n"
        "    # reprolint: disable=RPL002, RPL006\n"
        "    return random.random() + time.time()\n"
    )
    assert check_source(source, SIM_PATH, select=["RPL002"]) == []


def test_file_wide_suppression():
    source = "# reprolint: disable-file=RPL002\n" + BAD_SIM_SOURCE
    assert check_source(source, SIM_PATH, select=["RPL002"]) == []


def test_suppressing_one_rule_keeps_the_others():
    source = BAD_SIM_SOURCE.replace(
        "return random.random()",
        "return random.random()  # reprolint: disable=RPL001",
    )
    violations = check_source(source, SIM_PATH, select=["RPL002"])
    assert len(violations) == 1


def test_directive_inside_a_string_is_not_a_suppression():
    source = BAD_SIM_SOURCE.replace(
        "def f():",
        'MARKER = "# reprolint: disable-file=RPL002"\n\n\ndef f():',
    )
    violations = check_source(source, SIM_PATH, select=["RPL002"])
    assert len(violations) == 1


def test_parse_error_reports_rpl000():
    violations = check_source("def broken(:\n", SIM_PATH)
    assert len(violations) == 1
    assert violations[0].rule == PARSE_ERROR


def test_unknown_select_code_raises():
    with pytest.raises(ValueError, match="RPL999"):
        check_source(BAD_SIM_SOURCE, SIM_PATH, select=["RPL999"])


def test_logical_path_mapping():
    assert (
        logical_path_for(Path("src/repro/sim/medium.py"))
        == "repro/sim/medium.py"
    )
    assert (
        logical_path_for(Path("/abs/repo/src/repro/net/udp.py"))
        == "repro/net/udp.py"
    )
    assert (
        logical_path_for(Path("benchmarks/bench_kernels.py"))
        == "benchmarks/bench_kernels.py"
    )
    assert logical_path_for(Path("scripts/tool.py")) == "tool.py"


class TestReportsAndExitCodes:
    def _write_tree(self, tmp_path: Path, bad: bool) -> Path:
        tree = tmp_path / "src" / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "clean.py").write_text("VALUE = 3\n")
        if bad:
            (tree / "dirty.py").write_text(BAD_SIM_SOURCE)
        return tmp_path / "src"

    def test_lint_paths_clean(self, tmp_path):
        report = lint_paths([self._write_tree(tmp_path, bad=False)])
        assert report.violations == ()
        assert report.files_checked == 1
        assert report.exit_code == 0

    def test_lint_paths_dirty(self, tmp_path):
        report = lint_paths([self._write_tree(tmp_path, bad=True)])
        assert report.exit_code == 1
        assert [v.rule for v in report.violations] == ["RPL002"]
        assert report.violations[0].path.endswith("dirty.py")

    def test_json_reporter_schema(self, tmp_path):
        report = lint_paths([self._write_tree(tmp_path, bad=True)])
        document = json.loads(report.to_json())
        assert set(document) == {
            "version",
            "files_checked",
            "rules",
            "violations",
        }
        assert document["version"] == 1
        assert document["files_checked"] == 2
        assert document["rules"] == [f"RPL00{i}" for i in range(1, 10)]
        (violation,) = document["violations"]
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "RPL002"
        assert violation["line"] == 5

    def test_text_reporter_format(self, tmp_path):
        report = lint_paths([self._write_tree(tmp_path, bad=True)])
        text = report.format_text()
        assert "dirty.py:5:" in text
        assert "RPL002" in text
        assert text.endswith("1 violation in 2 files (9 rules)")

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = self._write_tree(tmp_path / "a", bad=False)
        dirty = self._write_tree(tmp_path / "b", bad=True)
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert main([str(tmp_path / "missing")]) == 2
        capsys.readouterr()
        assert main([str(clean), "--select", "NOPE99"]) == 2
        assert "NOPE99" in capsys.readouterr().err

    def test_main_json_output(self, tmp_path, capsys):
        dirty = self._write_tree(tmp_path, bad=True)
        assert main([str(dirty), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["violations"]

    def test_main_select_filters_rules(self, tmp_path, capsys):
        dirty = self._write_tree(tmp_path, bad=True)
        assert main([str(dirty), "--select", "RPL001"]) == 0
        out = capsys.readouterr().out
        assert "(1 rules)" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for index in range(1, 10):
            assert f"RPL00{index}" in out

    def test_execute_matches_main(self, tmp_path, capsys):
        dirty = self._write_tree(tmp_path, bad=True)
        assert execute([dirty]) == 1
        capsys.readouterr()
