"""Unit tests for tables, ASCII plots and CSV export."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.reporting import (
    ascii_phase_portrait,
    ascii_series_plot,
    render_table,
    write_csv,
)
from repro.errors import ConfigurationError
from repro.game.parameters import paper_parameters


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "long_header"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert "long_header" in lines[0]
        assert len({len(line) for line in lines[:2]}) <= 2

    def test_title(self):
        text = render_table(["a"], [["x"]], title="T")
        assert text.startswith("=== T ===")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        target = write_csv(
            tmp_path / "out.csv", ["x", "y"], [[1, 2.5], [3, 4.5]]
        )
        with target.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["x", "y"], ["1", "2.5"], ["3", "4.5"]]

    def test_creates_directories(self, tmp_path):
        target = write_csv(tmp_path / "deep" / "dir" / "out.csv", ["a"], [[1]])
        assert target.exists()


class TestAsciiSeriesPlot:
    def test_contains_marks_and_legend(self):
        plot = ascii_series_plot(
            {"up": [(0.0, 0.0), (1.0, 1.0)], "down": [(0.0, 1.0), (1.0, 0.0)]}
        )
        assert "o = up" in plot
        assert "x = down" in plot
        assert "o" in plot.splitlines()[0] + plot.splitlines()[-3]

    def test_axis_annotations(self):
        plot = ascii_series_plot({"s": [(0.0, 5.0), (2.0, 10.0)]})
        assert "10.000" in plot
        assert "5.000" in plot
        assert "2.000" in plot

    def test_flat_series_does_not_crash(self):
        plot = ascii_series_plot({"flat": [(0.0, 1.0), (1.0, 1.0)]})
        assert "flat" in plot

    def test_title(self):
        plot = ascii_series_plot({"s": [(0, 0), (1, 1)]}, title="My Plot")
        assert plot.splitlines()[0] == "My Plot"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_series_plot({})
        with pytest.raises(ConfigurationError):
            ascii_series_plot({"s": []})
        with pytest.raises(ConfigurationError):
            ascii_series_plot({"s": [(0, 0)]}, width=2)


class TestAsciiPhasePortrait:
    def test_contains_trajectory_and_destination(self):
        portrait = ascii_phase_portrait(paper_parameters(p=0.8, m=30), grid=15)
        assert "*" in portrait
        assert "@" in portrait
        assert "(X,Y)" in portrait
        assert "<- ESS" in portrait

    def test_grid_bound(self):
        with pytest.raises(ConfigurationError):
            ascii_phase_portrait(paper_parameters(p=0.8, m=30), grid=3)
