"""Unit and property tests for the statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import (
    attack_success_hypergeometric,
    attack_success_iid,
    iid_vs_exact_gap,
    mean,
    mean_estimate,
    sample_std,
    survival_probability,
    wilson_interval,
)
from repro.errors import ConfigurationError


class TestAttackSuccessModels:
    def test_iid_is_p_to_m(self):
        assert attack_success_iid(0.8, 3) == pytest.approx(0.512)

    def test_hypergeometric_known_value(self):
        # 20 forged, 5 authentic, m=3: C(20,3)/C(25,3)
        assert attack_success_hypergeometric(5, 20, 3) == pytest.approx(
            1140 / 2300
        )

    def test_no_forged_means_no_success(self):
        assert attack_success_hypergeometric(5, 0, 3) == 0.0

    def test_all_forged_means_certain_success(self):
        assert attack_success_hypergeometric(0, 10, 3) == 1.0

    def test_buffers_cover_pool(self):
        assert attack_success_hypergeometric(1, 9, 10) == 0.0

    def test_fewer_forged_than_buffers(self):
        assert attack_success_hypergeometric(5, 2, 3) == 0.0

    def test_converges_to_iid(self):
        """Large pools approach p^m (the paper's approximation)."""
        for scale in (1, 10, 100):
            gap = iid_vs_exact_gap(5 * scale, 20 * scale, 4)
            assert gap >= -1e-12
        assert iid_vs_exact_gap(500, 2000, 4) < iid_vs_exact_gap(5, 20, 4)

    def test_survival_is_complement(self):
        assert survival_probability(5, 20, 3) == pytest.approx(1 - 1140 / 2300)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            attack_success_iid(1.2, 3)
        with pytest.raises(ConfigurationError):
            attack_success_iid(0.5, 0)
        with pytest.raises(ConfigurationError):
            attack_success_hypergeometric(-1, 5, 2)
        with pytest.raises(ConfigurationError):
            attack_success_hypergeometric(0, 0, 2)

    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60)
    def test_hypergeometric_is_probability(self, authentic, forged, m):
        value = attack_success_hypergeometric(authentic, forged, m)
        assert 0.0 <= value <= 1.0

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60)
    def test_iid_upper_bounds_exact(self, authentic, forged, m):
        """Sampling without replacement can only help the defender."""
        assert iid_vs_exact_gap(authentic, forged, m) >= -1e-12


class TestMoments:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean([])

    def test_std_known_value(self):
        assert sample_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138, abs=1e-3
        )

    def test_std_single_value_is_zero(self):
        assert sample_std([3.0]) == 0.0

    def test_std_constant_is_zero(self):
        assert sample_std([5.0] * 10) == 0.0


class TestMeanEstimate:
    def test_interval_contains_mean(self):
        estimate = mean_estimate([1.0, 2.0, 3.0, 4.0])
        assert estimate.low <= estimate.mean <= estimate.high

    def test_interval_narrows_with_samples(self):
        few = mean_estimate([1.0, 2.0, 3.0])
        many = mean_estimate([1.0, 2.0, 3.0] * 10)
        assert many.high - many.low < few.high - few.low

    def test_higher_confidence_wider(self):
        data = [1.0, 2.0, 3.0, 4.0]
        c90 = mean_estimate(data, confidence=0.90)
        c99 = mean_estimate(data, confidence=0.99)
        assert c99.high - c99.low > c90.high - c90.low

    def test_unknown_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_estimate([1.0, 2.0], confidence=0.5)


class TestWilsonInterval:
    def test_contains_proportion(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_stays_in_unit_interval_at_extremes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        assert 0.0 < high < 0.3
        low, high = wilson_interval(20, 20)
        assert 0.7 < low < 1.0
        assert high == 1.0

    def test_narrows_with_trials(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert large[1] - large[0] < small[1] - small[0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 10, confidence=0.42)
