"""Tests for the analytic regime boundaries, pinned against the numeric
stability classification."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.boundaries import (
    corner_to_edge_boundary,
    edge_to_interior_boundary,
    interior_to_give_up_boundary,
    numeric_band_mismatches,
    regime_boundaries,
)
from repro.errors import ConfigurationError
from repro.game.ess import EssType, stable_points
from repro.game.parameters import GameParameters, paper_parameters


class TestClosedForms:
    def test_corner_boundary_closed_form_at_p08(self):
        """m = log(k1 p / Ra) / log p = 11.32 at the paper's constants —
        the analytic version of the paper's '1 <= m <= 11' band."""
        boundary = corner_to_edge_boundary(paper_parameters(p=0.8, m=1))
        assert boundary == pytest.approx(
            math.log(16 / 200) / math.log(0.8), rel=1e-12
        )
        assert math.floor(boundary) == 11

    def test_edge_boundary_at_p08(self):
        """(1,Y') hands over to the interior between m=16 and 17."""
        boundary = edge_to_interior_boundary(paper_parameters(p=0.8, m=1))
        assert 16.0 < boundary < 17.0

    def test_give_up_boundary_at_p08(self):
        """The interior exits at m = 54.x — the paper's '55 <= m' band."""
        boundary = interior_to_give_up_boundary(paper_parameters(p=0.8, m=1))
        assert 54.0 < boundary < 55.0

    def test_boundaries_shift_right_with_p(self):
        """Heavier attacks keep (1,1) stable for larger m (Fig. 7's
        underlying mechanism)."""
        low = corner_to_edge_boundary(paper_parameters(p=0.5, m=1))
        high = corner_to_edge_boundary(paper_parameters(p=0.9, m=1))
        assert high > low

    def test_degenerate_p_rejected(self):
        with pytest.raises(ConfigurationError):
            corner_to_edge_boundary(paper_parameters(p=1.0, m=1))
        with pytest.raises(ConfigurationError):
            regime_boundaries(paper_parameters(p=0.0, m=1))

    def test_assumption_violation_rejected(self):
        weak = GameParameters(ra=10.0, k1=20.0, k2=4.0, p=0.9, m=1)
        with pytest.raises(ConfigurationError):
            corner_to_edge_boundary(weak)


class TestAgainstStabilityAnalysis:
    """The boundaries must predict the numerically classified ESS."""

    _LABELS = {
        "(1,1)": EssType.CORNER_11,
        "(1,Y')": EssType.EDGE_1Y,
        "(X,Y)": EssType.INTERIOR,
        "(X',1)": EssType.EDGE_X1,
    }

    @pytest.mark.parametrize("m", [1, 5, 11, 12, 16, 17, 30, 54, 55, 80])
    def test_band_of_matches_stable_point_at_p08(self, m):
        params = paper_parameters(p=0.8, m=m, max_buffers=200)
        bands = regime_boundaries(params)
        stable = stable_points(params)
        assert len(stable) == 1
        assert self._LABELS[bands.band_of(m)] is stable[0].ess_type

    @given(
        st.floats(min_value=0.3, max_value=0.93),
        st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=40, deadline=None)
    def test_band_of_matches_stability_generally(self, p, m):
        params = paper_parameters(p=p, m=m, max_buffers=300)
        bands = regime_boundaries(params)
        stable = stable_points(params)
        if len(stable) != 1:
            return  # boundary-degenerate parameter combinations
        assert self._LABELS[bands.band_of(m)] is stable[0].ess_type

    def test_extreme_p_band_collapse_handled(self):
        """At p = 0.95 the middle bands collapse; band_of must still
        agree with the stability analysis."""
        for m in (30, 44, 50, 70):
            params = paper_parameters(p=0.95, m=m, max_buffers=200)
            stable = stable_points(params)
            bands = regime_boundaries(params)
            assert len(stable) == 1
            assert self._LABELS[bands.band_of(m)] is stable[0].ess_type


class TestNumericCrossCheck:
    def test_analytic_bands_match_batched_dynamics_at_p08(self):
        """The closed forms and the batched Euler kernel agree on all of
        m = 1..100 except the known clipping artifact at the
        (1,Y')/interior edge (README fidelity notes)."""
        params = paper_parameters(p=0.8, m=1, max_buffers=200)
        mismatches = numeric_band_mismatches(params, list(range(1, 101)))
        assert set(mismatches) <= {17, 18}

    def test_interior_band_is_clean(self):
        params = paper_parameters(p=0.8, m=1, max_buffers=200)
        assert numeric_band_mismatches(params, [25, 30, 40, 50]) == []

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            numeric_band_mismatches(paper_parameters(p=0.8, m=1), [])
