"""Unit tests for the Fig. 5 bandwidth/memory model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bandwidth import (
    PAPER_MEMORY_LARGE_BITS,
    PAPER_MEMORY_SMALL_BITS,
    PAPER_RECORD_BITS_DAP,
    PAPER_RECORD_BITS_TESLAPP,
    attack_success_probability,
    attacker_bandwidth_required,
    buffer_multiplier,
    buffers_for_memory,
    fig5_series,
    mac_bandwidth_required,
    memory_saving_ratio,
    required_forged_fraction,
)
from repro.errors import ConfigurationError


class TestPaperAccounting:
    def test_record_sizes(self):
        assert PAPER_RECORD_BITS_TESLAPP == 280
        assert PAPER_RECORD_BITS_DAP == 56

    def test_memory_saving_is_80_percent(self):
        assert memory_saving_ratio() == pytest.approx(0.8)

    def test_buffer_multiplier_is_5(self):
        assert buffer_multiplier() == pytest.approx(5.0)

    def test_buffers_for_memory(self):
        assert buffers_for_memory(1024 * 1000, 280) == 3657
        assert buffers_for_memory(1024 * 1000, 56) == 18285

    def test_dap_affords_5x_buffers(self):
        for memory in (PAPER_MEMORY_LARGE_BITS, PAPER_MEMORY_SMALL_BITS):
            ratio = buffers_for_memory(memory, 56) / buffers_for_memory(memory, 280)
            assert ratio == pytest.approx(5.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            buffers_for_memory(0, 56)
        with pytest.raises(ConfigurationError):
            buffers_for_memory(100, 0)
        with pytest.raises(ConfigurationError):
            buffers_for_memory(10, 56)


class TestSuccessModel:
    def test_p_to_the_m(self):
        assert attack_success_probability(0.5, 3) == pytest.approx(0.125)

    def test_forged_fraction_inverse(self):
        p = required_forged_fraction(0.125, 3)
        assert p == pytest.approx(0.5)

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=50)
    def test_roundtrip(self, target, m):
        p = required_forged_fraction(target, m)
        assert attack_success_probability(p, m) == pytest.approx(target, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            attack_success_probability(1.5, 3)
        with pytest.raises(ConfigurationError):
            required_forged_fraction(0.0, 3)
        with pytest.raises(ConfigurationError):
            required_forged_fraction(0.5, 0)


class TestBandwidthReadings:
    def test_attacker_bandwidth_literal_formula(self):
        """xm = P^(1/m) (1 - xd)."""
        assert attacker_bandwidth_required(0.125, 3, xd=0.2) == pytest.approx(
            0.5 * 0.8
        )

    def test_more_buffers_forces_attacker_to_spend_more(self):
        small = attacker_bandwidth_required(0.1, 10)
        large = attacker_bandwidth_required(0.1, 100)
        assert large > small

    def test_mac_bandwidth_dual(self):
        # attacker 0.2, target 0.125 with m=3 -> p_needed 0.5 -> xm = 0.2
        assert mac_bandwidth_required(0.2, 0.125, 3) == pytest.approx(0.2)

    def test_more_buffers_cheaper_macs(self):
        small = mac_bandwidth_required(0.2, 0.1, 10)
        large = mac_bandwidth_required(0.2, 0.1, 100)
        assert large < small

    def test_mac_bandwidth_capped_at_non_data_share(self):
        assert mac_bandwidth_required(0.79, 1e-9, 1, xd=0.2) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            attacker_bandwidth_required(0.1, 3, xd=1.0)
        with pytest.raises(ConfigurationError):
            mac_bandwidth_required(-0.1, 0.1, 3)


class TestFig5Series:
    @pytest.fixture
    def series(self):
        levels = [0.05, 0.1, 0.2, 0.4]
        return fig5_series(levels)

    def test_four_curves(self, series):
        assert len(series) == 4

    def test_dap_dominates_teslapp_at_equal_memory(self, series):
        """The figure's headline shape, in both readings."""
        for memory in (PAPER_MEMORY_LARGE_BITS, PAPER_MEMORY_SMALL_BITS):
            dap = series[("DAP", memory)]
            teslapp = series[("TESLA++", memory)]
            for d, t in zip(dap, teslapp):
                assert d.attacker_bandwidth > t.attacker_bandwidth
                assert d.mac_bandwidth < t.mac_bandwidth

    def test_more_memory_dominates_less(self, series):
        for protocol in ("DAP", "TESLA++"):
            large = series[(protocol, PAPER_MEMORY_LARGE_BITS)]
            small = series[(protocol, PAPER_MEMORY_SMALL_BITS)]
            for lg, sm in zip(large, small):
                assert lg.attacker_bandwidth >= sm.attacker_bandwidth
                assert lg.mac_bandwidth <= sm.mac_bandwidth

    def test_buffer_counts_derived_from_memory(self, series):
        point = series[("DAP", PAPER_MEMORY_LARGE_BITS)][0]
        assert point.buffers == buffers_for_memory(PAPER_MEMORY_LARGE_BITS, 56)
