"""Unit tests for the Fig. 7 / Fig. 8 cost-curve analytics."""

from __future__ import annotations

import pytest

from repro.analysis.costs import cost_curves, crossover_p
from repro.errors import ConfigurationError
from repro.game.parameters import paper_parameters

GRID = [0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.97, 0.99]


@pytest.fixture(scope="module")
def paper_curves():
    return cost_curves(paper_parameters(p=0.5, m=1), GRID, selection="paper")


@pytest.fixture(scope="module")
def argmin_curves():
    return cost_curves(paper_parameters(p=0.5, m=1), GRID, selection="argmin")


class TestCostCurves:
    def test_grid_preserved(self, paper_curves):
        assert paper_curves.attack_levels == GRID

    def test_game_always_cheaper_than_naive(self, paper_curves, argmin_curves):
        """Fig. 8: E <= N over the whole sweep."""
        assert paper_curves.always_cheaper()
        assert argmin_curves.always_cheaper()

    def test_saving_reopens_at_extreme_attack(self, paper_curves):
        """§VI-B-4: "especially when p > 0.94 our defense mechanism
        greatly reduces the average overall cost" — the E-vs-N gap
        shrinks toward p ≈ 0.95 and then re-opens sharply."""
        by_p = {point.p: point.saving for point in paper_curves}
        assert by_p[0.99] > by_p[0.95] + 30
        assert all(point.saving >= 0 for point in paper_curves)

    def test_optimal_m_grows_with_p_below_saturation(self, argmin_curves):
        ms = argmin_curves.optimal_ms
        assert ms[0] < ms[4]  # 0.2 -> 0.9

    def test_paper_mode_saturates_near_cap(self, paper_curves):
        """Fig. 7: m pinned near M = 50 for p > 0.94."""
        by_p = dict(zip(paper_curves.attack_levels, paper_curves.optimal_ms))
        assert by_p[0.97] > 35
        assert by_p[0.99] > 35
        assert by_p[0.8] < 20

    def test_crossover_near_094(self, paper_curves):
        crossover = crossover_p(paper_curves)
        assert crossover is not None
        assert 0.9 <= crossover <= 0.99

    def test_naive_cost_is_selection_independent(self, paper_curves, argmin_curves):
        assert paper_curves.naive_costs == argmin_curves.naive_costs

    def test_argmin_never_worse_than_paper_mode(self, paper_curves, argmin_curves):
        for a, p in zip(argmin_curves, paper_curves):
            assert a.game_cost <= p.game_cost + 1e-9

    def test_point_accessors(self, paper_curves):
        point = paper_curves.points[0]
        assert point.saving == pytest.approx(point.naive_cost - point.game_cost)
        assert 0.0 <= point.saving_ratio <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cost_curves(paper_parameters(p=0.5, m=1), [])
