"""Unit tests for trajectory analytics (Fig. 6 support)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.trajectories import (
    classify_trajectory,
    is_spiral,
    phase_portrait,
    regime_bands,
    settling_steps,
)
from repro.errors import ConfigurationError
from repro.game.ess import EssType
from repro.game.parameters import paper_parameters
from repro.game.replicator import ReplicatorDynamics


class TestClassifyTrajectory:
    def test_classifies_destination(self):
        params = paper_parameters(p=0.8, m=5)
        trajectory = ReplicatorDynamics(params).integrate()
        assert classify_trajectory(params, trajectory) is EssType.CORNER_11

    def test_unsettled_trajectory_unclassified(self):
        params = paper_parameters(p=0.8, m=30)
        trajectory = ReplicatorDynamics(params).integrate(max_steps=3)
        assert classify_trajectory(params, trajectory, tol=1e-4) is None


class TestSettlingSteps:
    def test_settles_before_end(self):
        params = paper_parameters(p=0.8, m=5)
        trajectory = ReplicatorDynamics(params).integrate(max_steps=10_000)
        steps = settling_steps(trajectory)
        assert steps is not None
        assert 0 < steps < len(trajectory.xs)

    def test_constant_trajectory_settles_immediately(self):
        from repro.game.replicator import Trajectory

        flat = Trajectory(
            xs=np.full(10, 0.5),
            ys=np.full(10, 0.5),
            converged=True,
            steps=9,
            dt=0.01,
            method="euler",
        )
        assert settling_steps(flat) == 0


class TestSpiralDetection:
    def test_interior_regime_is_spiral(self):
        params = paper_parameters(p=0.8, m=30)
        trajectory = ReplicatorDynamics(params).integrate()
        assert is_spiral(trajectory)

    def test_fast_corner_convergence_is_not(self):
        params = paper_parameters(p=0.8, m=3)
        trajectory = ReplicatorDynamics(params).integrate()
        assert not is_spiral(trajectory)


class TestRegimeBands:
    def test_paper_band_structure_at_p08(self):
        """The §VI-B-2 regimes in order: (1,1), (1,Y'), interior, (X',1).

        Band boundaries must match the paper within ±1 in m (the exact
        (1,Y')/(X,Y) edge depends on the Euler clipping artifact the
        paper itself exhibits — see EXPERIMENTS.md).
        """
        base = paper_parameters(p=0.8, m=1, max_buffers=100)
        m_values = [1, 5, 11, 12, 14, 17, 19, 25, 40, 54, 55, 70, 100]
        bands, labels = regime_bands(base, m_values)
        order = [band.ess_type for band in bands]
        assert order == [
            EssType.CORNER_11,
            EssType.EDGE_1Y,
            EssType.INTERIOR,
            EssType.EDGE_X1,
        ]
        assert labels[11] is EssType.CORNER_11
        assert labels[12] is EssType.EDGE_1Y
        assert labels[54] is EssType.INTERIOR
        assert labels[55] is EssType.EDGE_X1

    def test_band_widths(self):
        base = paper_parameters(p=0.8, m=1, max_buffers=100)
        bands, _ = regime_bands(base, [5, 20, 70])
        assert sum(band.width for band in bands) >= 3

    def test_validation(self):
        base = paper_parameters(p=0.8, m=1)
        with pytest.raises(ConfigurationError):
            regime_bands(base, [])
        with pytest.raises(ConfigurationError):
            regime_bands(base, [5, 5])
        with pytest.raises(ConfigurationError):
            regime_bands(base, [7, 3])


class TestPhasePortrait:
    def test_shapes(self):
        xs, ys, dxs, dys = phase_portrait(paper_parameters(p=0.8, m=30), grid=11)
        assert xs.shape == ys.shape == dxs.shape == dys.shape == (11, 11)

    def test_boundary_rows_have_zero_normal_flow(self):
        xs, ys, dxs, dys = phase_portrait(paper_parameters(p=0.8, m=30), grid=5)
        assert np.allclose(dxs[:, 0], 0.0)  # x = 0 column
        assert np.allclose(dxs[:, -1], 0.0)  # x = 1 column
        assert np.allclose(dys[0, :], 0.0)  # y = 0 row
        assert np.allclose(dys[-1, :], 0.0)  # y = 1 row

    def test_bad_grid(self):
        with pytest.raises(ConfigurationError):
            phase_portrait(paper_parameters(p=0.8, m=30), grid=1)
