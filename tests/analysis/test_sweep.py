"""Unit tests for the sweep utilities."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import open_interval_grid, sweep
from repro.errors import ConfigurationError


class TestOpenIntervalGrid:
    def test_endpoints_pulled_in(self):
        grid = open_interval_grid(0.0, 1.0, 5)
        assert grid[0] > 0.0
        assert grid[-1] < 1.0

    def test_count(self):
        assert len(open_interval_grid(0.0, 1.0, 7)) == 7

    def test_monotone(self):
        grid = open_interval_grid(0.0, 1.0, 10)
        assert grid == sorted(grid)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            open_interval_grid(0.0, 1.0, 1)
        with pytest.raises(ConfigurationError):
            open_interval_grid(1.0, 0.0, 5)
        with pytest.raises(ConfigurationError):
            open_interval_grid(0.0, 0.001, 5, margin=0.01)


class TestSweep:
    def test_pairs_inputs_with_outputs(self):
        result = sweep([1, 2, 3], lambda v: v * v)
        assert result.inputs == (1, 2, 3)
        assert result.outputs == (1, 4, 9)

    def test_iterable_and_sized(self):
        result = sweep([1, 2], str)
        assert len(result) == 2
        assert list(result) == [(1, "1"), (2, "2")]

    def test_empty_sweep(self):
        assert len(sweep([], lambda v: v)) == 0
