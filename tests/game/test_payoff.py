"""Unit tests for the payoff matrix (Table II) and §V-D expectations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.game.parameters import paper_parameters
from repro.game.payoff import PayoffMatrix, expected_utilities

shares = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestPayoffMatrix:
    @pytest.fixture
    def params(self):
        return paper_parameters(p=0.8, m=5)

    def test_no_attack_no_defense_is_zero(self, params):
        matrix = PayoffMatrix.at(params, 0.5, 0.5)
        assert matrix.plain_quiet.defender == 0.0
        assert matrix.plain_quiet.attacker == 0.0

    def test_undefended_attack_full_damage(self, params):
        matrix = PayoffMatrix.at(params, 0.5, 0.5)
        assert matrix.plain_dos.defender == pytest.approx(-200.0)
        assert matrix.plain_dos.attacker == pytest.approx(
            200.0 - params.attacker_cost(0.5)
        )

    def test_defended_attack_scaled_by_p_to_m(self, params):
        matrix = PayoffMatrix.at(params, 0.5, 0.5)
        big_p = 0.8 ** 5
        assert matrix.buffer_dos.defender == pytest.approx(
            -params.defender_cost(0.5) - big_p * 200.0
        )
        assert matrix.buffer_dos.attacker == pytest.approx(
            big_p * 200.0 - params.attacker_cost(0.5)
        )

    def test_quiet_attacker_earns_nothing(self, params):
        matrix = PayoffMatrix.at(params, 0.7, 0.2)
        assert matrix.buffer_quiet.attacker == 0.0
        assert matrix.buffer_quiet.defender == pytest.approx(
            -params.defender_cost(0.7)
        )

    def test_rows_layout(self, params):
        matrix = PayoffMatrix.at(params, 0.5, 0.5)
        rows = matrix.as_rows()
        assert rows[0][0] == matrix.buffer_dos
        assert rows[1][1] == matrix.plain_quiet

    def test_share_validation(self, params):
        with pytest.raises(ConfigurationError):
            PayoffMatrix.at(params, 1.5, 0.5)
        with pytest.raises(ConfigurationError):
            PayoffMatrix.at(params, 0.5, -0.1)


class TestExpectedUtilities:
    @pytest.fixture
    def params(self):
        return paper_parameters(p=0.8, m=5)

    def test_no_attack_utility_is_zero(self, params):
        assert expected_utilities(params, 0.5, 0.5).no_attack == 0.0

    def test_hand_computed_example(self, params):
        """E(Ud) at (X, Y) = (0.5, 0.5), p=0.8, m=5."""
        u = expected_utilities(params, 0.5, 0.5)
        big_p = 0.8 ** 5
        cd = 4 * 5 * 0.5
        expected = 0.5 * (-cd - big_p * 200) + 0.5 * (-cd)
        assert u.defend == pytest.approx(expected)

    def test_no_defense_utility(self, params):
        u = expected_utilities(params, 0.3, 0.4)
        assert u.no_defend == pytest.approx(-0.4 * 200.0)

    def test_means_are_share_weighted(self, params):
        u = expected_utilities(params, 0.3, 0.4)
        assert u.defender_mean == pytest.approx(0.3 * u.defend + 0.7 * u.no_defend)
        assert u.attacker_mean == pytest.approx(0.4 * u.attack)

    @given(shares, shares)
    @settings(max_examples=50)
    def test_utilities_consistent_with_matrix(self, x, y):
        """E(Ud) must equal the Y-weighted matrix row, etc."""
        params = paper_parameters(p=0.8, m=5)
        matrix = PayoffMatrix.at(params, x, y)
        u = expected_utilities(params, x, y)
        assert u.defend == pytest.approx(
            y * matrix.buffer_dos.defender + (1 - y) * matrix.buffer_quiet.defender
        )
        assert u.no_defend == pytest.approx(
            y * matrix.plain_dos.defender + (1 - y) * matrix.plain_quiet.defender
        )
        assert u.attack == pytest.approx(
            x * matrix.buffer_dos.attacker + (1 - x) * matrix.plain_dos.attacker
        )
