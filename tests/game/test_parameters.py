"""Unit tests for the game-parameter model (Table I)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.game.parameters import (
    PAPER_K1,
    PAPER_K2,
    PAPER_MAX_BUFFERS,
    PAPER_RA,
    GameParameters,
    paper_parameters,
)


class TestPaperConstants:
    def test_evaluation_setting(self):
        assert (PAPER_RA, PAPER_K1, PAPER_K2) == (200.0, 20.0, 4.0)

    def test_buffer_cap_is_50(self):
        assert PAPER_MAX_BUFFERS == 50

    def test_paper_parameters_builder(self):
        params = paper_parameters(p=0.8, m=10)
        assert params.ra == 200.0
        assert params.k1 == 20.0
        assert params.k2 == 4.0
        assert params.p == 0.8
        assert params.m == 10

    def test_paper_setting_satisfies_assumptions(self):
        assert paper_parameters(p=0.8, m=10).satisfies_paper_assumptions


class TestDerivedQuantities:
    def test_p_equals_xa(self):
        params = paper_parameters(p=0.3, m=5)
        assert params.xa == 0.3

    def test_ld_equals_ra(self):
        assert paper_parameters(p=0.3, m=5).ld == 200.0

    def test_attack_success_probability(self):
        params = paper_parameters(p=0.5, m=3)
        assert params.attack_success_probability == pytest.approx(0.125)

    def test_defense_success_complement(self):
        params = paper_parameters(p=0.5, m=3)
        assert params.defense_success_probability == pytest.approx(0.875)

    def test_attacker_cost_scales_with_y(self):
        params = paper_parameters(p=0.8, m=5)
        assert params.attacker_cost(0.5) == pytest.approx(20 * 0.8 * 0.5)
        assert params.attacker_cost(0.0) == 0.0

    def test_defender_cost_scales_with_x(self):
        params = paper_parameters(p=0.8, m=5)
        assert params.defender_cost(0.5) == pytest.approx(4 * 5 * 0.5)

    def test_with_m_copies(self):
        base = paper_parameters(p=0.8, m=5)
        other = base.with_m(12)
        assert other.m == 12
        assert other.p == base.p
        assert base.m == 5  # frozen

    def test_with_p_copies(self):
        base = paper_parameters(p=0.8, m=5)
        assert base.with_p(0.3).p == 0.3


class TestValidation:
    def test_p_out_of_range(self):
        with pytest.raises(ConfigurationError):
            paper_parameters(p=1.1, m=5)
        with pytest.raises(ConfigurationError):
            paper_parameters(p=-0.1, m=5)

    def test_bad_m(self):
        with pytest.raises(ConfigurationError):
            paper_parameters(p=0.5, m=0)

    def test_bad_economics(self):
        with pytest.raises(ConfigurationError):
            GameParameters(ra=0.0, k1=1.0, k2=1.0, p=0.5, m=1)
        with pytest.raises(ConfigurationError):
            GameParameters(ra=1.0, k1=0.0, k2=1.0, p=0.5, m=1)
        with pytest.raises(ConfigurationError):
            GameParameters(ra=1.0, k1=1.0, k2=-1.0, p=0.5, m=1)

    def test_bad_max_buffers(self):
        with pytest.raises(ConfigurationError):
            GameParameters(ra=1.0, k1=1.0, k2=1.0, p=0.5, m=1, max_buffers=0)

    def test_assumption_flag_detects_violation(self):
        weak = GameParameters(ra=5.0, k1=100.0, k2=1.0, p=0.9, m=1)
        assert not weak.satisfies_paper_assumptions
