"""Unit and property tests for the replicator dynamics (§V-D)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ConvergenceError
from repro.game.parameters import paper_parameters
from repro.game.replicator import (
    PAPER_INITIAL_SHARES,
    PAPER_TIME_STEP,
    ReplicatorDynamics,
)

inner = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


@pytest.fixture
def dynamics():
    return ReplicatorDynamics(paper_parameters(p=0.8, m=20))


class TestVectorField:
    def test_paper_constants(self):
        assert PAPER_TIME_STEP == 0.01
        assert PAPER_INITIAL_SHARES == (0.5, 0.5)

    def test_closed_form_example(self, dynamics):
        """dX/dt at (0.5, 0.5) for p=0.8, m=20, Ra=200, k2=4."""
        q = 1 - 0.8 ** 20
        expected_dx = 0.25 * (200 * 0.5 * q - 4 * 20 * 0.5)
        expected_dy = 0.25 * (-q * 0.5 * 200 + 200 - 20 * 0.8 * 0.5)
        dx, dy = dynamics.derivatives(0.5, 0.5)
        assert dx == pytest.approx(expected_dx)
        assert dy == pytest.approx(expected_dy)

    def test_boundary_is_invariant(self, dynamics):
        for x, y in ((0.0, 0.5), (1.0, 0.5)):
            dx, _ = dynamics.derivatives(x, y)
            assert dx == 0.0
        for x, y in ((0.5, 0.0), (0.5, 1.0)):
            _, dy = dynamics.derivatives(x, y)
            assert dy == 0.0

    @given(inner, inner)
    @settings(max_examples=60)
    def test_closed_form_matches_utility_form(self, x, y):
        """The §V-D algebra: closed forms must equal the definitionally
        computed X[E(Ud) - E(d)], Y[E(Ua) - E(a)]."""
        dynamics = ReplicatorDynamics(paper_parameters(p=0.8, m=20))
        closed = dynamics.derivatives(x, y)
        definitional = dynamics.derivatives_from_utilities(x, y)
        assert closed[0] == pytest.approx(definitional[0], abs=1e-9)
        assert closed[1] == pytest.approx(definitional[1], abs=1e-9)

    @given(
        inner,
        inner,
        st.floats(min_value=0.05, max_value=0.99),
        st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=60)
    def test_parametrised_consistency(self, x, y, p, m):
        dynamics = ReplicatorDynamics(paper_parameters(p=p, m=m, max_buffers=100))
        closed = dynamics.derivatives(x, y)
        definitional = dynamics.derivatives_from_utilities(x, y)
        assert closed[0] == pytest.approx(definitional[0], abs=1e-6)
        assert closed[1] == pytest.approx(definitional[1], abs=1e-6)


class TestJacobian:
    def test_matches_finite_differences(self, dynamics):
        import numpy as np

        x, y, h = 0.37, 0.61, 1e-7
        jac = dynamics.jacobian(x, y)
        fx1 = dynamics.derivatives(x + h, y)
        fx0 = dynamics.derivatives(x - h, y)
        fy1 = dynamics.derivatives(x, y + h)
        fy0 = dynamics.derivatives(x, y - h)
        numeric = np.array(
            [
                [(fx1[0] - fx0[0]) / (2 * h), (fy1[0] - fy0[0]) / (2 * h)],
                [(fx1[1] - fx0[1]) / (2 * h), (fy1[1] - fy0[1]) / (2 * h)],
            ]
        )
        assert np.allclose(jac, numeric, atol=1e-4)


class TestIntegration:
    def test_stays_in_unit_square(self, dynamics):
        trajectory = dynamics.integrate(0.5, 0.5, max_steps=5000)
        assert (trajectory.xs >= 0).all() and (trajectory.xs <= 1).all()
        assert (trajectory.ys >= 0).all() and (trajectory.ys <= 1).all()

    def test_converges_for_paper_setting(self, dynamics):
        trajectory = dynamics.integrate()
        assert trajectory.converged

    def test_final_point_is_rest_point(self, dynamics):
        trajectory = dynamics.integrate()
        dx, dy = dynamics.derivatives(*trajectory.final)
        assert abs(dx) + abs(dy) < 1e-8

    def test_rk4_agrees_with_euler_destination(self, dynamics):
        euler = dynamics.integrate(method="euler")
        rk4 = dynamics.integrate(method="rk4")
        assert euler.final[0] == pytest.approx(rk4.final[0], abs=0.05)
        assert euler.final[1] == pytest.approx(rk4.final[1], abs=0.05)

    def test_record_every_subsamples(self, dynamics):
        full = dynamics.integrate(max_steps=1000, record_every=1)
        sparse = dynamics.integrate(max_steps=1000, record_every=50)
        assert len(sparse.xs) < len(full.xs)
        assert sparse.final == full.final

    def test_initial_point_recorded(self, dynamics):
        trajectory = dynamics.integrate(0.3, 0.7, max_steps=10)
        assert trajectory.initial == (0.3, 0.7)

    def test_settles_within(self, dynamics):
        trajectory = dynamics.integrate()
        assert trajectory.settles_within(*trajectory.final, tol=1e-6)
        assert not trajectory.settles_within(0.0, 0.0, tol=1e-6)

    def test_divergence_raises_when_asked(self, dynamics):
        with pytest.raises(ConvergenceError):
            dynamics.integrate(max_steps=3, raise_on_divergence=True)

    def test_unconverged_returned_otherwise(self, dynamics):
        trajectory = dynamics.integrate(max_steps=3)
        assert not trajectory.converged
        assert trajectory.steps == 3

    def test_bad_arguments_rejected(self, dynamics):
        with pytest.raises(ConfigurationError):
            dynamics.integrate(dt=0.0)
        with pytest.raises(ConfigurationError):
            dynamics.integrate(max_steps=0)
        with pytest.raises(ConfigurationError):
            dynamics.integrate(method="leapfrog")
        with pytest.raises(ConfigurationError):
            dynamics.integrate(record_every=0)

    @given(
        inner,
        inner,
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=25, deadline=None)
    def test_unit_square_invariance_property(self, x0, y0, p, m):
        dynamics = ReplicatorDynamics(paper_parameters(p=p, m=m, max_buffers=100))
        trajectory = dynamics.integrate(x0, y0, max_steps=2000)
        assert (trajectory.xs >= 0).all() and (trajectory.xs <= 1).all()
        assert (trajectory.ys >= 0).all() and (trajectory.ys <= 1).all()
