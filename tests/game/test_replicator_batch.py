"""Batched replicator kernel == scalar kernel, bit for bit.

The batch precomputes its per-cell constants with Python scalar
arithmetic and evaluates the field in the scalar expression's exact
operation order, so no tolerance is needed anywhere in this file:
every comparison is ``==``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.game.parameters import paper_parameters
from repro.game.replicator import BatchedReplicator, ReplicatorDynamics

CASES = [(0.5, 4), (0.8, 1), (0.8, 12), (0.8, 18), (0.8, 30), (0.8, 55), (0.95, 50)]


def scalar_trajectories(cases, method="euler", **kwargs):
    return [
        ReplicatorDynamics(paper_parameters(p=p, m=m)).integrate(
            method=method, **kwargs
        )
        for p, m in cases
    ]


class TestBitEquivalence:
    @pytest.mark.parametrize("method", ["euler", "rk4"])
    def test_endpoints_match_scalar(self, method):
        cells = [paper_parameters(p=p, m=m) for p, m in CASES]
        batch = BatchedReplicator(cells).integrate(method=method)
        for i, trajectory in enumerate(scalar_trajectories(CASES, method=method)):
            assert batch.final(i) == trajectory.final
            assert int(batch.steps[i]) == trajectory.steps
            assert bool(batch.converged[i]) == trajectory.converged

    def test_origin_grid_matches_scalar(self):
        params = paper_parameters(p=0.8, m=30)
        origins = [(0.1, 0.9), (0.5, 0.5), (0.9, 0.1), (0.3, 0.7)]
        batch = BatchedReplicator.uniform(params, len(origins)).integrate(
            x0=np.array([o[0] for o in origins]),
            y0=np.array([o[1] for o in origins]),
        )
        dynamics = ReplicatorDynamics(params)
        for i, (x0, y0) in enumerate(origins):
            assert batch.final(i) == dynamics.integrate(x0=x0, y0=y0).final

    def test_derivatives_batch_matches_scalar(self):
        dynamics = ReplicatorDynamics(paper_parameters(p=0.8, m=30))
        axis = np.array([j / 10 for j in range(11)])
        gx, gy = np.meshgrid(axis, axis)
        dxs, dys = dynamics.derivatives_batch(gx, gy)
        for i in range(11):
            for j in range(11):
                dx, dy = dynamics.derivatives(gx[i, j], gy[i, j])
                assert dxs[i, j] == dx
                assert dys[i, j] == dy


class TestTrajectoryReconstruction:
    @pytest.mark.parametrize("record_every", [1, 7])
    def test_matches_scalar_recording(self, record_every):
        cases = [(0.8, 5), (0.8, 30)]
        cells = [paper_parameters(p=p, m=m) for p, m in cases]
        batch = BatchedReplicator(cells).integrate(record_every=record_every)
        scalars = scalar_trajectories(cases, record_every=record_every)
        for i, scalar in enumerate(scalars):
            reconstructed = batch.trajectory(i)
            assert reconstructed.xs.tolist() == scalar.xs.tolist()
            assert reconstructed.ys.tolist() == scalar.ys.tolist()
            assert reconstructed.steps == scalar.steps
            assert reconstructed.converged == scalar.converged

    def test_trajectory_requires_history(self):
        batch = BatchedReplicator.uniform(paper_parameters(p=0.8, m=5), 2).integrate()
        with pytest.raises(ConfigurationError):
            batch.trajectory(0)


class TestBatchApi:
    def test_len_and_all_converged(self):
        batch = BatchedReplicator.uniform(paper_parameters(p=0.8, m=5), 3).integrate()
        assert len(batch) == 3
        assert batch.all_converged

    def test_cells_and_size(self):
        kernel = BatchedReplicator.uniform(paper_parameters(p=0.8, m=5), 4)
        assert kernel.size == 4
        assert len(kernel.cells) == 4

    def test_empty_cells_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchedReplicator(())

    def test_uniform_count_validated(self):
        with pytest.raises(ConfigurationError):
            BatchedReplicator.uniform(paper_parameters(p=0.8, m=5), 0)

    def test_integrate_validates_settings(self):
        kernel = BatchedReplicator.uniform(paper_parameters(p=0.8, m=5), 1)
        with pytest.raises(ConfigurationError):
            kernel.integrate(dt=0.0)
        with pytest.raises(ConfigurationError):
            kernel.integrate(max_steps=0)
        with pytest.raises(ConfigurationError):
            kernel.integrate(method="heun")
        with pytest.raises(ConfigurationError):
            kernel.integrate(record_every=0)

    def test_divergence_raises_when_asked(self):
        kernel = BatchedReplicator.uniform(paper_parameters(p=0.8, m=30), 2)
        with pytest.raises(ConvergenceError):
            kernel.integrate(max_steps=3, raise_on_divergence=True)
        # ...and reports unconverged flags when not asked to raise.
        batch = kernel.integrate(max_steps=3)
        assert not batch.all_converged
