"""Unit tests for the economic-constant sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.game.parameters import paper_parameters
from repro.game.sensitivity import (
    recommendation_stability,
    sensitivity_sweep,
)

BASE = paper_parameters(p=0.8, m=1)


class TestSensitivitySweep:
    def test_sweeps_ra(self):
        points = sensitivity_sweep(BASE, "ra", [100.0, 200.0, 400.0])
        assert [point.value for point in points] == [100.0, 200.0, 400.0]
        assert all(point.field == "ra" for point in points)

    def test_higher_reward_more_buffers(self):
        """Richer targets justify stronger defense."""
        points = sensitivity_sweep(BASE, "ra", [50.0, 200.0, 800.0])
        ms = [point.optimal_m for point in points]
        assert ms[0] <= ms[1] <= ms[2]
        assert ms[0] < ms[2]

    def test_pricier_buffers_fewer_buffers(self):
        points = sensitivity_sweep(BASE, "k2", [1.0, 4.0, 16.0])
        ms = [point.optimal_m for point in points]
        assert ms[0] >= ms[1] >= ms[2]
        assert ms[0] > ms[2]

    def test_game_still_beats_naive_everywhere(self):
        for field, values in (
            ("ra", [100.0, 400.0]),
            ("k1", [10.0, 40.0]),
            ("k2", [2.0, 8.0]),
        ):
            for point in sensitivity_sweep(BASE, field, values):
                assert point.advantage >= -1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sensitivity_sweep(BASE, "p", [0.5])
        with pytest.raises(ConfigurationError):
            sensitivity_sweep(BASE, "ra", [])


class TestRecommendationStability:
    def test_reports_all_constants(self):
        stability = recommendation_stability(BASE, relative_error=0.25, steps=3)
        assert set(stability) == {"ra", "k1", "k2"}

    def test_baseline_within_bounds(self):
        stability = recommendation_stability(BASE, relative_error=0.25, steps=3)
        for low, baseline, high in stability.values():
            assert low <= baseline <= high

    def test_recommendation_is_robust_at_paper_setting(self):
        """±25% misestimation of any constant moves m* by only a few
        buffers — the practical robustness argument for the mechanism."""
        stability = recommendation_stability(BASE, relative_error=0.25, steps=5)
        for low, baseline, high in stability.values():
            assert high - low <= max(4, baseline // 2)

    def test_wider_error_wider_range(self):
        narrow = recommendation_stability(BASE, relative_error=0.1, steps=3)
        wide = recommendation_stability(BASE, relative_error=0.5, steps=3)
        for field in ("ra", "k2"):
            narrow_span = narrow[field][2] - narrow[field][0]
            wide_span = wide[field][2] - wide[field][0]
            assert wide_span >= narrow_span

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            recommendation_stability(BASE, relative_error=0.0)
        with pytest.raises(ConfigurationError):
            recommendation_stability(BASE, relative_error=1.5)
        with pytest.raises(ConfigurationError):
            recommendation_stability(BASE, steps=1)
