"""Tests for best-response dynamics and the §V-A model-choice argument."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.game.bestresponse import BestResponseDynamics
from repro.game.ess import realized_ess
from repro.game.parameters import paper_parameters


class TestMechanics:
    def test_best_responses_match_payoff_signs(self):
        params = paper_parameters(p=0.8, m=5)
        dynamics = BestResponseDynamics(params)
        # With nobody attacking, buffers are pure cost -> don't defend;
        # attacking a half-defended fleet is profitable -> attack.
        defender, _ = dynamics.best_responses(0.5, 0.0)
        assert defender == 0
        _, attacker = dynamics.best_responses(0.5, 0.5)
        assert attacker == 1
        # At (0, 0) the defender's share-scaled cost vanishes (tie) but
        # attacking an undefended fleet pays Ra outright.
        assert dynamics.best_responses(0.0, 0.0) == (None, 1)

    def test_pure_fixed_point_converges(self):
        """m=5: (1,1) is a dominant-strategy equilibrium — even
        classical best response finds it."""
        params = paper_parameters(p=0.8, m=5)
        trajectory = BestResponseDynamics(params).run()
        assert trajectory.converged
        assert trajectory.final == (1.0, 1.0)

    def test_run_budget_respected(self):
        params = paper_parameters(p=0.8, m=30)
        trajectory = BestResponseDynamics(params, adjustment=0.31).run(max_steps=25)
        assert trajectory.steps <= 25

    def test_validation(self):
        params = paper_parameters(p=0.8, m=5)
        with pytest.raises(ConfigurationError):
            BestResponseDynamics(params, adjustment=0.0)
        with pytest.raises(ConfigurationError):
            BestResponseDynamics(params).run(max_steps=0)


class TestSectionVAArgument:
    """§V-A: classical rationality fails where the ESS is mixed; the
    replicator dynamics converge everywhere. Measured, not asserted."""

    @pytest.mark.parametrize("m", [14, 30, 70])
    def test_classical_best_response_cycles_in_mixed_regimes(self, m):
        params = paper_parameters(p=0.8, m=m, max_buffers=100)
        trajectory = BestResponseDynamics(params).run(max_steps=500)
        assert not trajectory.converged
        assert trajectory.cycles

    @pytest.mark.parametrize("m", [14, 30, 70])
    def test_smoothing_does_not_rescue_best_response(self, m):
        params = paper_parameters(p=0.8, m=m, max_buffers=100)
        trajectory = BestResponseDynamics(params, adjustment=0.3).run(
            max_steps=2000
        )
        assert not trajectory.converged

    @pytest.mark.parametrize("m", [14, 30, 70])
    def test_replicator_converges_where_best_response_cycles(self, m):
        params = paper_parameters(p=0.8, m=m, max_buffers=100)
        point, trajectory = realized_ess(params)
        assert trajectory.converged
        assert point is not None

    def test_cycle_orbits_the_ess(self):
        """The best-response cycle straddles the replicator's interior
        equilibrium — rational agents orbit what evolving agents find."""
        params = paper_parameters(p=0.8, m=30)
        point, _ = realized_ess(params)
        trajectory = BestResponseDynamics(params, adjustment=0.3).run(
            max_steps=2000
        )
        tail_x = trajectory.xs[-50:]
        tail_y = trajectory.ys[-50:]
        assert tail_x.min() - 0.05 <= point.x <= tail_x.max() + 0.05
        assert tail_y.min() - 0.05 <= point.y <= tail_y.max() + 0.05
