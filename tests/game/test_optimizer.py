"""Unit tests for Algorithm 3 and the cost models (§V-F, §VI-B)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.game.ess import EssType
from repro.game.optimizer import (
    BufferOptimizer,
    EquilibriumSolver,
    defense_cost,
    naive_defense_cost,
)
from repro.game.parameters import paper_parameters


class TestDefenseCost:
    def test_formula(self):
        """E = k2 m X^2 + [1 - (1-p^m) X] Ra Y."""
        params = paper_parameters(p=0.8, m=10)
        q = 1 - 0.8 ** 10
        x, y = 0.7, 0.4
        expected = 4 * 10 * x * x + (1 - q * x) * 200 * y
        assert defense_cost(params, x, y) == pytest.approx(expected)

    def test_no_attack_no_defense_is_free(self):
        assert defense_cost(paper_parameters(p=0.8, m=10), 0.0, 0.0) == 0.0

    def test_cost_at_x_prime_1_equals_ra(self):
        """At the (X', 1) equilibrium the algebra collapses to E = Ra —
        the 'give up' cost plateau behind the paper's p > 0.94 regime."""
        from repro.game.ess import edge_x_prime

        params = paper_parameters(p=0.99, m=40)
        x_prime = edge_x_prime(params)
        assert defense_cost(params, x_prime, 1.0) == pytest.approx(200.0)


class TestNaiveCost:
    def test_formula(self):
        """N = k2 M + p^M Ra Y' with Y' from the maxed game."""
        params = paper_parameters(p=0.9, m=1)
        p50 = 0.9 ** 50
        y_prime = min(p50 * 200 / (20 * 0.9), 1.0)
        assert naive_defense_cost(params) == pytest.approx(4 * 50 + p50 * 200 * y_prime)

    def test_approaches_k2_m_for_weak_attack(self):
        assert naive_defense_cost(paper_parameters(p=0.3, m=1)) == pytest.approx(
            200.0, abs=1e-6
        )

    def test_grows_sharply_at_extreme_attack(self):
        mild = naive_defense_cost(paper_parameters(p=0.9, m=1))
        extreme = naive_defense_cost(paper_parameters(p=0.99, m=1))
        assert extreme > mild + 50


class TestEquilibriumSolver:
    def test_analytic_route_for_unique_stable_point(self):
        solver = EquilibriumSolver()
        x, y, label = solver.solve(paper_parameters(p=0.8, m=30))
        assert label is EssType.INTERIOR
        assert 0 < x < 1 and 0 < y < 1

    def test_solution_is_rest_point(self):
        from repro.game.replicator import ReplicatorDynamics

        params = paper_parameters(p=0.8, m=14)
        x, y, _ = EquilibriumSolver().solve(params)
        dx, dy = ReplicatorDynamics(params).derivatives(x, y)
        assert abs(dx) + abs(dy) < 1e-8


class TestBufferOptimizer:
    def test_paper_sweep_m13_at_p08(self):
        """At p = 0.8 the cost-optimal buffer count is 13 (argmin)."""
        result = BufferOptimizer(paper_parameters(p=0.8, m=1)).optimize()
        assert result.optimal_m == 13

    def test_costs_u_shaped_at_p08(self):
        result = BufferOptimizer(paper_parameters(p=0.8, m=1)).optimize()
        costs = [row.cost for row in result.rows]
        best = costs.index(min(costs))
        assert all(costs[i] >= costs[i + 1] - 1e-9 for i in range(best))
        assert all(costs[i] <= costs[i + 1] + 1e-9 for i in range(best, len(costs) - 1))

    def test_optimal_m_increases_with_p(self):
        """Fig. 7's main trend."""
        optima = [
            BufferOptimizer(paper_parameters(p=p, m=1)).optimize().optimal_m
            for p in (0.3, 0.5, 0.8, 0.9)
        ]
        assert optima == sorted(optima)
        assert optima[0] < optima[-1]

    def test_paper_selection_saturates_at_high_p(self):
        """Fig. 7's jump to m ≈ M for p > 0.94, reproduced by the
        published running-min loop (the (X',1) cost plateau keeps
        triggering its `Em < Em-1` update)."""
        argmin = BufferOptimizer(paper_parameters(p=0.97, m=1)).optimize(
            selection="argmin"
        )
        paper = BufferOptimizer(paper_parameters(p=0.97, m=1)).optimize(
            selection="paper"
        )
        assert paper.optimal_m > 30
        assert argmin.optimal_m < 25
        # the bug costs real money:
        assert paper.optimal_cost >= argmin.optimal_cost

    def test_selections_agree_below_crossover(self):
        for p in (0.5, 0.8, 0.9):
            opt = BufferOptimizer(paper_parameters(p=p, m=1))
            assert (
                opt.optimize(selection="argmin").optimal_m
                == opt.optimize(selection="paper").optimal_m
            )

    def test_game_cost_beats_naive_everywhere(self):
        """Fig. 8's claim, E <= N, under both selection rules."""
        for p in (0.2, 0.5, 0.8, 0.9, 0.95, 0.99):
            base = paper_parameters(p=p, m=1)
            naive = naive_defense_cost(base)
            for selection in ("argmin", "paper"):
                result = BufferOptimizer(base).optimize(selection=selection)
                assert result.optimal_cost <= naive + 1e-6

    def test_rows_cover_sweep(self):
        result = BufferOptimizer(paper_parameters(p=0.8, m=1)).optimize(
            m_min=3, m_max=7
        )
        assert [row.m for row in result.rows] == [3, 4, 5, 6, 7]

    def test_row_for_lookup(self):
        result = BufferOptimizer(paper_parameters(p=0.8, m=1)).optimize()
        assert result.row_for(5).m == 5
        with pytest.raises(ConfigurationError):
            result.row_for(400)

    def test_evaluate_is_cached(self):
        optimizer = BufferOptimizer(paper_parameters(p=0.8, m=1))
        assert optimizer.evaluate(10) is optimizer.evaluate(10)

    def test_bad_arguments(self):
        optimizer = BufferOptimizer(paper_parameters(p=0.8, m=1))
        with pytest.raises(ConfigurationError):
            optimizer.optimize(m_min=0)
        with pytest.raises(ConfigurationError):
            optimizer.optimize(m_min=5, m_max=3)
        with pytest.raises(ConfigurationError):
            optimizer.optimize(selection="greedy")
