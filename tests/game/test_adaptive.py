"""Unit tests for the adaptive game-guided defense policy."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.game.adaptive import AdaptiveDefense, AttackEstimator
from repro.game.parameters import paper_parameters


class TestAttackEstimator:
    def test_initial_prior(self):
        assert AttackEstimator(initial=0.3).estimate == 0.3

    def test_converges_to_constant_signal(self):
        estimator = AttackEstimator(alpha=0.3, initial=0.0)
        for _ in range(60):
            estimator.observe_fraction(0.8)
        assert estimator.estimate == pytest.approx(0.8, abs=1e-3)

    def test_observe_interval_samples_forged_fraction(self):
        estimator = AttackEstimator(alpha=1.0, initial=0.0)
        estimator.observe_interval(stored_records=4, matched_records=1)
        assert estimator.estimate == pytest.approx(0.75)

    def test_empty_interval_is_ignored(self):
        estimator = AttackEstimator(initial=0.4)
        estimator.observe_interval(0, 0)
        assert estimator.estimate == 0.4
        assert estimator.observations == 0

    def test_observation_counter(self):
        estimator = AttackEstimator()
        estimator.observe_fraction(0.5)
        estimator.observe_interval(2, 1)
        assert estimator.observations == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AttackEstimator(alpha=0.0)
        with pytest.raises(ConfigurationError):
            AttackEstimator(initial=1.5)
        estimator = AttackEstimator()
        with pytest.raises(ConfigurationError):
            estimator.observe_fraction(1.5)
        with pytest.raises(ConfigurationError):
            estimator.observe_interval(1, 2)
        with pytest.raises(ConfigurationError):
            estimator.observe_interval(-1, 0)


class TestAdaptiveDefense:
    @pytest.fixture
    def base(self):
        return paper_parameters(p=0.5, m=1)

    def test_recommendation_follows_estimate(self, base):
        low = AdaptiveDefense(base, AttackEstimator(alpha=1.0, initial=0.3))
        high = AdaptiveDefense(base, AttackEstimator(alpha=1.0, initial=0.9))
        assert low.recommended_buffers() < high.recommended_buffers()

    def test_matches_direct_optimization(self, base):
        from repro.game.optimizer import BufferOptimizer

        policy = AdaptiveDefense(base, AttackEstimator(alpha=1.0, initial=0.8))
        direct = BufferOptimizer(base.with_p(0.8)).optimize()
        assert policy.recommended_buffers() == direct.optimal_m

    def test_estimate_snapped_to_grid(self, base):
        policy = AdaptiveDefense(
            base, AttackEstimator(alpha=1.0, initial=0.8034), p_resolution=0.01
        )
        assert policy.current_p == pytest.approx(0.80)

    def test_equilibrium_row_is_consistent(self, base):
        policy = AdaptiveDefense(base, AttackEstimator(alpha=1.0, initial=0.8))
        row = policy.equilibrium()
        assert row.m == policy.recommended_buffers()
        assert row.x == policy.defense_probability()
        assert row.y == policy.expected_attacker_share()
        assert policy.ess_label() is row.ess_type

    def test_adapts_after_new_observations(self, base):
        estimator = AttackEstimator(alpha=1.0, initial=0.2)
        policy = AdaptiveDefense(base, estimator)
        quiet_m = policy.recommended_buffers()
        estimator.observe_fraction(0.9)
        assert policy.recommended_buffers() > quiet_m

    def test_decide_defend_matches_share(self, base):
        policy = AdaptiveDefense(base, AttackEstimator(alpha=1.0, initial=0.8))
        share = policy.defense_probability()
        rng = random.Random(0)
        hits = sum(policy.decide_defend(rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(share, abs=0.03)

    def test_validation(self, base):
        with pytest.raises(ConfigurationError):
            AdaptiveDefense(base, p_resolution=0.0)
