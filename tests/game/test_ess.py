"""Unit tests for fixed points and ESS classification (§V-E, Fig. 6)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.game.ess import (
    EssType,
    Stability,
    edge_x_prime,
    edge_y_prime,
    fixed_points,
    interior_fixed_point,
    label_point,
    realized_ess,
    stable_points,
)
from repro.game.parameters import paper_parameters
from repro.game.replicator import ReplicatorDynamics


class TestCandidateFormulas:
    def test_interior_formula(self):
        """§V-E case 5 closed form at p=0.8, m=30."""
        params = paper_parameters(p=0.8, m=30)
        q = 1 - 0.8 ** 30
        denom = 20 * 4 * 30 * 0.8 + q * q * 200 ** 2
        x, y = interior_fixed_point(params)
        assert x == pytest.approx(q * 200 ** 2 / denom)
        assert y == pytest.approx(4 * 30 * 200 / denom)

    def test_interior_is_a_rest_point(self):
        params = paper_parameters(p=0.8, m=30)
        dynamics = ReplicatorDynamics(params)
        x, y = interior_fixed_point(params)
        dx, dy = dynamics.derivatives(x, y)
        assert abs(dx) < 1e-9
        assert abs(dy) < 1e-9

    def test_interior_leaves_square_for_large_m(self):
        assert interior_fixed_point(paper_parameters(p=0.8, m=60, max_buffers=100)) is None

    def test_edge_y_prime_formula(self):
        params = paper_parameters(p=0.8, m=14)
        assert edge_y_prime(params) == pytest.approx(0.8 ** 14 * 200 / (20 * 0.8))

    def test_edge_y_prime_is_rest_point(self):
        params = paper_parameters(p=0.8, m=14)
        dynamics = ReplicatorDynamics(params)
        dx, dy = dynamics.derivatives(1.0, edge_y_prime(params))
        assert dx == 0.0
        assert abs(dy) < 1e-9

    def test_edge_y_prime_outside_for_small_m(self):
        # p^m Ra / (k1 xa) > 1 for m <= 11 at p = 0.8
        assert edge_y_prime(paper_parameters(p=0.8, m=5)) is None

    def test_edge_x_prime_formula(self):
        params = paper_parameters(p=0.8, m=70, max_buffers=100)
        assert edge_x_prime(params) == pytest.approx(
            (1 - 0.8 ** 70) * 200 / (4 * 70)
        )

    def test_edge_x_prime_is_rest_point(self):
        params = paper_parameters(p=0.8, m=70, max_buffers=100)
        dynamics = ReplicatorDynamics(params)
        dx, dy = dynamics.derivatives(edge_x_prime(params), 1.0)
        assert abs(dx) < 1e-9
        assert dy == 0.0

    def test_edge_x_prime_outside_for_small_m(self):
        assert edge_x_prime(paper_parameters(p=0.8, m=10)) is None


class TestClassification:
    def test_corners_always_candidates(self):
        points = fixed_points(paper_parameters(p=0.8, m=10))
        types = {point.ess_type for point in points}
        assert {
            EssType.CORNER_00,
            EssType.CORNER_01,
            EssType.CORNER_10,
            EssType.CORNER_11,
        } <= types

    def test_corner_00_never_stable_under_paper_assumptions(self):
        """§V-E case 1: Ra > Ca means (0,0) cannot be ESS."""
        for m in (1, 10, 30, 60):
            points = fixed_points(paper_parameters(p=0.8, m=m, max_buffers=100))
            corner = next(p for p in points if p.ess_type is EssType.CORNER_00)
            assert corner.stability is not Stability.STABLE

    def test_corner_10_never_stable(self):
        """§V-E case 2: (1,0) cannot be ESS."""
        for m in (1, 10, 30, 60):
            points = fixed_points(paper_parameters(p=0.8, m=m, max_buffers=100))
            corner = next(p for p in points if p.ess_type is EssType.CORNER_10)
            assert corner.stability is not Stability.STABLE

    def test_exactly_one_stable_point_in_paper_regimes(self):
        for m in (5, 14, 30, 70):
            stable = stable_points(paper_parameters(p=0.8, m=m, max_buffers=100))
            assert len(stable) == 1

    def test_paper_regime_small_m_is_11(self):
        stable = stable_points(paper_parameters(p=0.8, m=5))
        assert stable[0].ess_type is EssType.CORNER_11

    def test_paper_regime_medium_m_is_1_y(self):
        stable = stable_points(paper_parameters(p=0.8, m=14))
        assert stable[0].ess_type is EssType.EDGE_1Y

    def test_paper_regime_interior(self):
        stable = stable_points(paper_parameters(p=0.8, m=30))
        assert stable[0].ess_type is EssType.INTERIOR

    def test_paper_regime_large_m_is_x_1(self):
        stable = stable_points(paper_parameters(p=0.8, m=70, max_buffers=100))
        assert stable[0].ess_type is EssType.EDGE_X1

    def test_interior_is_spiral_sink(self):
        """The paper observes spiral convergence: complex eigenvalues
        with negative real parts."""
        points = fixed_points(paper_parameters(p=0.8, m=30))
        interior = next(p for p in points if p.ess_type is EssType.INTERIOR)
        assert interior.stability is Stability.STABLE
        assert all(abs(e.imag) > 0 for e in interior.eigenvalues)

    def test_regime_boundaries_match_paper(self):
        """(1,1) stable up to m=11, (1,Y') from m=12 (paper §VI-B-2)."""
        stable_11 = stable_points(paper_parameters(p=0.8, m=11))
        stable_12 = stable_points(paper_parameters(p=0.8, m=12))
        assert stable_11[0].ess_type is EssType.CORNER_11
        assert stable_12[0].ess_type is EssType.EDGE_1Y

    def test_regime_boundary_54_55(self):
        """Interior up to m=54, (X',1) from m=55 (paper §VI-B-2)."""
        stable_54 = stable_points(paper_parameters(p=0.8, m=54, max_buffers=100))
        stable_55 = stable_points(paper_parameters(p=0.8, m=55, max_buffers=100))
        assert stable_54[0].ess_type is EssType.INTERIOR
        assert stable_55[0].ess_type is EssType.EDGE_X1


class TestRealizedEss:
    def test_reaches_1_1_fast_for_small_m(self):
        point, trajectory = realized_ess(paper_parameters(p=0.8, m=5))
        assert point is not None
        assert point.ess_type is EssType.CORNER_11
        assert trajectory.converged

    def test_reaches_1_y_for_medium_m(self):
        point, _ = realized_ess(paper_parameters(p=0.8, m=14))
        assert point.ess_type is EssType.EDGE_1Y
        assert point.y == pytest.approx(0.55, abs=0.01)

    def test_reaches_interior_spiral(self):
        from repro.analysis.trajectories import is_spiral

        point, trajectory = realized_ess(paper_parameters(p=0.8, m=30))
        assert point.ess_type is EssType.INTERIOR
        assert is_spiral(trajectory)

    def test_reaches_x_1_for_large_m(self):
        point, _ = realized_ess(paper_parameters(p=0.8, m=70, max_buffers=100))
        assert point.ess_type is EssType.EDGE_X1
        assert point.x == pytest.approx(200 / (4 * 70), abs=1e-6)

    def test_paper_y_044_around_m_15(self):
        """§VI-B-2: "Y converges to 0.44" in the (1, Y') regime —
        matched at m = 15."""
        point, _ = realized_ess(paper_parameters(p=0.8, m=15))
        assert point.y == pytest.approx(0.44, abs=0.01)


class TestLabelPoint:
    def test_labels_known_points(self):
        params = paper_parameters(p=0.8, m=30)
        x, y = interior_fixed_point(params)
        assert label_point(params, x, y) is EssType.INTERIOR
        assert label_point(params, 1.0, 1.0) is EssType.CORNER_11

    def test_unknown_point_is_none(self):
        params = paper_parameters(p=0.8, m=30)
        assert label_point(params, 0.5, 0.5, tol=1e-3) is None

    def test_out_of_square_rejected(self):
        with pytest.raises(ConfigurationError):
            label_point(paper_parameters(p=0.8, m=30), 1.5, 0.5)
