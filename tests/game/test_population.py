"""Tests for the agent-based population dynamics (§V-A bounded rationality)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.game.ess import EssType, realized_ess
from repro.game.parameters import paper_parameters
from repro.game.population import PopulationGame


def make_game(m=14, mutation=0.0, seed=1, **kwargs):
    defaults = dict(
        defenders=300,
        attackers=300,
        imitation_rate=0.3,
        mutation_rate=mutation,
        rng=random.Random(seed),
    )
    defaults.update(kwargs)
    return PopulationGame(
        paper_parameters(p=0.8, m=m, max_buffers=100), **defaults
    )


class TestMechanics:
    def test_initial_shares_respected(self):
        game = make_game(x0=0.25, y0=0.75)
        assert game.state.x == pytest.approx(0.25, abs=0.01)
        assert game.state.y == pytest.approx(0.75, abs=0.01)

    def test_shares_stay_in_unit_interval(self):
        game = make_game(mutation=0.01)
        trajectory = game.run(500)
        assert (trajectory.xs >= 0).all() and (trajectory.xs <= 1).all()
        assert (trajectory.ys >= 0).all() and (trajectory.ys <= 1).all()

    def test_deterministic_given_seed(self):
        a = make_game(seed=3).run(200)
        b = make_game(seed=3).run(200)
        assert a.final == b.final

    def test_record_every_subsamples(self):
        dense = make_game(seed=1).run(200, record_every=1)
        sparse = make_game(seed=1).run(200, record_every=20)
        assert len(sparse.xs) < len(dense.xs)
        assert sparse.final == dense.final

    def test_tail_mean_window(self):
        trajectory = make_game(seed=1).run(400)
        tail_x, tail_y = trajectory.tail_mean(0.25)
        assert 0.0 <= tail_x <= 1.0
        assert 0.0 <= tail_y <= 1.0

    def test_boundary_absorption_without_mutation(self):
        """Pure imitation cannot reintroduce an extinct strategy."""
        game = make_game(m=5, x0=1.0, y0=1.0)
        trajectory = game.run(100)
        assert trajectory.final == (1.0, 1.0)

    def test_mutation_escapes_boundaries(self):
        game = make_game(m=30, x0=1.0, y0=1.0, mutation=0.02, seed=5)
        trajectory = game.run(500)
        assert trajectory.final != (1.0, 1.0)

    def test_validation(self):
        params = paper_parameters(p=0.8, m=5)
        with pytest.raises(ConfigurationError):
            PopulationGame(params, defenders=1)
        with pytest.raises(ConfigurationError):
            PopulationGame(params, x0=1.5)
        with pytest.raises(ConfigurationError):
            PopulationGame(params, imitation_rate=0.0)
        with pytest.raises(ConfigurationError):
            PopulationGame(params, mutation_rate=0.6)
        with pytest.raises(ConfigurationError):
            make_game().run(0)
        with pytest.raises(ConfigurationError):
            make_game().run(10, record_every=0)
        with pytest.raises(ConfigurationError):
            make_game().run(10).tail_mean(0.0)


class TestMeanFieldAgreement:
    """The §V-A claim: imitation dynamics realise the replicator ODE."""

    @pytest.mark.parametrize(
        "m,expected_type",
        [(5, EssType.CORNER_11), (14, EssType.EDGE_1Y), (70, EssType.EDGE_X1)],
    )
    def test_agents_reach_the_ode_regime(self, m, expected_type):
        params = paper_parameters(p=0.8, m=m, max_buffers=100)
        ode_point, _ = realized_ess(params)
        assert ode_point.ess_type is expected_type
        game = make_game(m=m, mutation=0.001, seed=2, defenders=500, attackers=500)
        trajectory = game.run(3000, record_every=10)
        tail_x, tail_y = trajectory.tail_mean()
        assert tail_x == pytest.approx(ode_point.x, abs=0.2)
        assert tail_y == pytest.approx(ode_point.y, abs=0.2)

    def test_interior_regime_hovers_near_the_spiral_sink(self):
        params = paper_parameters(p=0.8, m=30)
        ode_point, _ = realized_ess(params)
        game = make_game(m=30, mutation=0.001, seed=4, defenders=500, attackers=500)
        trajectory = game.run(4000, record_every=10)
        tail_x, tail_y = trajectory.tail_mean()
        assert tail_x == pytest.approx(ode_point.x, abs=0.2)
        assert tail_y == pytest.approx(ode_point.y, abs=0.25)

    def test_larger_populations_track_more_tightly(self):
        """Mean-field convergence: variance shrinks with population size."""
        params = paper_parameters(p=0.8, m=30)
        ode_point, _ = realized_ess(params)
        errors = {}
        for size in (50, 800):
            game = PopulationGame(
                params,
                defenders=size,
                attackers=size,
                imitation_rate=0.3,
                mutation_rate=0.001,
                rng=random.Random(7),
            )
            tail_x, tail_y = game.run(3000, record_every=10).tail_mean()
            errors[size] = abs(tail_x - ode_point.x) + abs(tail_y - ode_point.y)
        assert errors[800] <= errors[50] + 0.05
