"""Round-trip and fuzz tests for the wire codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.protocols.packets import (
    CdmPacket,
    KeyDisclosurePacket,
    MacAnnouncePacket,
    MessageKeyPacket,
    MuTeslaDataPacket,
    TeslaPacket,
)
from repro.protocols.wire import (
    decode_packet,
    encode_packet,
    framing_overhead_bits,
)

KEY = b"\x11" * 10
MAC = b"\x22" * 10
MSG = b"m" * 25

SAMPLES = [
    TeslaPacket(7, MSG, MAC, 5, KEY),
    TeslaPacket(1, MSG, MAC, 0, None),
    MuTeslaDataPacket(3, MSG, MAC),
    KeyDisclosurePacket(9, KEY),
    CdmPacket(4, KEY, MAC, 3, KEY, next_cdm_hash=b"\x33" * 10),
    CdmPacket(4, KEY, MAC, 0, None, next_cdm_hash=None),
    MacAnnouncePacket(12, MAC),
    MessageKeyPacket(11, MSG, KEY),
]


class TestRoundTrip:
    @pytest.mark.parametrize("packet", SAMPLES, ids=lambda p: type(p).__name__)
    def test_roundtrip_identity(self, packet):
        assert decode_packet(encode_packet(packet)) == packet

    def test_empty_message_roundtrips(self):
        packet = MuTeslaDataPacket(1, b"", MAC)
        assert decode_packet(encode_packet(packet)) == packet

    def test_encoding_is_deterministic(self):
        packet = MacAnnouncePacket(5, MAC)
        assert encode_packet(packet) == encode_packet(packet)

    def test_distinct_packets_distinct_encodings(self):
        a = encode_packet(MacAnnouncePacket(5, MAC))
        b = encode_packet(MacAnnouncePacket(6, MAC))
        assert a != b

    @given(
        st.integers(min_value=0, max_value=2 ** 32 - 1),
        st.binary(min_size=0, max_size=255),
    )
    @settings(max_examples=60)
    def test_arbitrary_message_key_roundtrip(self, index, message):
        packet = MessageKeyPacket(index, message, KEY)
        assert decode_packet(encode_packet(packet)) == packet


class TestFramingOverhead:
    @pytest.mark.parametrize("packet", SAMPLES, ids=lambda p: type(p).__name__)
    def test_overhead_is_small_and_nonnegative(self, packet):
        overhead = framing_overhead_bits(packet)
        assert 0 <= overhead <= 48  # tag + length/presence bytes only

    def test_announce_frame_is_8_bits_over(self):
        # 112-bit payload + 1 tag byte = 120 bits on the wire.
        assert framing_overhead_bits(MacAnnouncePacket(1, MAC)) == 8


class TestEncodeValidation:
    def test_unencodable_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode_packet(object())  # type: ignore[arg-type]

    def test_wrong_key_size_rejected(self):
        with pytest.raises(ProtocolError):
            encode_packet(KeyDisclosurePacket(1, b"short"))

    def test_oversized_message_rejected(self):
        with pytest.raises(ProtocolError):
            encode_packet(MessageKeyPacket(1, b"x" * 300, KEY))

    def test_negative_index_rejected(self):
        with pytest.raises(ProtocolError):
            encode_packet(MacAnnouncePacket(-1, MAC))

    def test_oversized_index_rejected(self):
        with pytest.raises(ProtocolError):
            encode_packet(MacAnnouncePacket(2 ** 40, MAC))


class TestDecodeRobustness:
    def test_empty_buffer(self):
        with pytest.raises(ProtocolError):
            decode_packet(b"")

    def test_unknown_tag(self):
        with pytest.raises(ProtocolError):
            decode_packet(b"\xff\x00\x00\x00\x01")

    def test_truncation_every_prefix(self):
        """No prefix of a valid packet decodes (or crashes)."""
        full = encode_packet(CdmPacket(4, KEY, MAC, 3, KEY, next_cdm_hash=KEY))
        for cut in range(len(full)):
            with pytest.raises(ProtocolError):
                decode_packet(full[:cut])

    @pytest.mark.parametrize("packet", SAMPLES, ids=lambda p: type(p).__name__)
    def test_truncation_fuzz_every_type_every_boundary(self, packet):
        """Fuzz: every encoded packet type, cut at every byte boundary,
        must raise ProtocolError — exactly what a receiver daemon sees
        when a datagram is clipped in flight."""
        full = encode_packet(packet)
        for cut in range(len(full)):
            with pytest.raises(ProtocolError):
                decode_packet(full[:cut])

    def test_trailing_garbage_rejected(self):
        full = encode_packet(MacAnnouncePacket(1, MAC))
        with pytest.raises(ProtocolError):
            decode_packet(full + b"\x00")

    @given(st.binary(min_size=0, max_size=80))
    @settings(max_examples=200)
    def test_random_bytes_never_crash(self, data):
        """Fuzz: arbitrary buffers either decode to a packet or raise
        ProtocolError — nothing else."""
        try:
            packet = decode_packet(data)
        except ProtocolError:
            return
        # whatever decoded must re-encode to the same bytes
        assert encode_packet(packet) == bytes(data)

    @given(st.binary(min_size=1, max_size=60), st.integers(0, 59))
    @settings(max_examples=100)
    def test_bit_flips_never_crash(self, data, position):
        """Corrupted valid packets are handled like any other buffer."""
        base = bytearray(encode_packet(MuTeslaDataPacket(3, MSG, MAC)))
        base[position % len(base)] ^= 0xFF
        try:
            decode_packet(bytes(base))
        except ProtocolError:
            pass
