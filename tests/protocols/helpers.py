"""Shared drivers for protocol-level tests.

Protocols are driven without the simulator here: packets for interval
``i`` are delivered mid-interval (receiver-local time ``i - 0.5`` on a
unit schedule), which keeps timing explicit and deterministic.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.protocols.base import AuthEvent, AuthOutcome, BroadcastReceiver

__all__ = ["mid_interval", "deliver", "run_intervals", "outcomes"]


def mid_interval(index: int, duration: float = 1.0) -> float:
    """Receiver-local time in the middle of interval ``index``."""
    return (index - 1) * duration + duration / 2


def deliver(
    receiver: BroadcastReceiver, packets: Iterable[object], now: float
) -> List[AuthEvent]:
    """Feed ``packets`` to ``receiver`` at time ``now``."""
    events: List[AuthEvent] = []
    for packet in packets:
        events.extend(receiver.receive(packet, now))
    return events


def run_intervals(
    sender, receiver: BroadcastReceiver, intervals: int, duration: float = 1.0
) -> List[AuthEvent]:
    """Deliver every interval's packets in order, loss-free."""
    events: List[AuthEvent] = []
    for index in range(1, intervals + 1):
        events.extend(
            deliver(receiver, sender.packets_for_interval(index), mid_interval(index, duration))
        )
    return events


def outcomes(events: Iterable[AuthEvent], outcome: AuthOutcome) -> List[AuthEvent]:
    """Filter events by outcome."""
    return [event for event in events if event.outcome is outcome]
