"""Unit tests for the μTESLA protocol."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.protocols.base import AuthOutcome
from repro.protocols.mu_tesla import MuTeslaReceiver, MuTeslaSender
from repro.protocols.packets import (
    FORGED,
    KeyDisclosurePacket,
    MuTeslaDataPacket,
)
from repro.timesync.sync import SecurityCondition
from tests.protocols.helpers import deliver, mid_interval, outcomes, run_intervals

SEED = b"mu-tesla-seed"


@pytest.fixture
def condition_d2(schedule, sync):
    return SecurityCondition(schedule, sync, disclosure_delay=2)


@pytest.fixture
def sender():
    return MuTeslaSender(SEED, chain_length=15, disclosure_delay=2)


@pytest.fixture
def receiver(sender, condition_d2):
    return MuTeslaReceiver(sender.chain.commitment, condition_d2)


class TestMuTeslaSender:
    def test_interval_emits_data_and_disclosure(self, sender):
        packets = sender.packets_for_interval(5)
        data = [p for p in packets if isinstance(p, MuTeslaDataPacket)]
        keys = [p for p in packets if isinstance(p, KeyDisclosurePacket)]
        assert len(data) == 1
        assert len(keys) == 1
        assert keys[0].index == 3

    def test_no_disclosure_in_early_intervals(self, sender):
        packets = sender.packets_for_interval(2)
        assert not [p for p in packets if isinstance(p, KeyDisclosurePacket)]

    def test_disclosure_once_per_epoch_not_per_packet(self):
        """The μTESLA bandwidth saving: many data packets, one disclosure."""
        sender = MuTeslaSender(SEED, 15, packets_per_interval=5)
        packets = sender.packets_for_interval(6)
        keys = [p for p in packets if isinstance(p, KeyDisclosurePacket)]
        assert len(keys) == 1

    def test_redundant_disclosures_configurable(self):
        sender = MuTeslaSender(SEED, 15, disclosures_per_interval=3)
        packets = sender.packets_for_interval(6)
        keys = [p for p in packets if isinstance(p, KeyDisclosurePacket)]
        assert len(keys) == 3

    def test_data_macs_use_interval_key(self, sender, mac_scheme):
        packet = sender.packets_for_interval(3)[0]
        assert mac_scheme.verify(sender.chain.key(3), packet.message, packet.mac)

    def test_bandwidth_cheaper_than_tesla(self, sender):
        """Per interval, μTESLA ships fewer bits than TESLA (one small
        disclosure instead of a key in every packet)."""
        from repro.protocols.tesla import TeslaSender

        tesla = TeslaSender(SEED, 15, packets_per_interval=4)
        mu = MuTeslaSender(SEED, 15, packets_per_interval=4)
        tesla_bits = sum(p.wire_bits for p in tesla.packets_for_interval(5))
        mu_bits = sum(p.wire_bits for p in mu.packets_for_interval(5))
        assert mu_bits < tesla_bits

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            MuTeslaSender(SEED, 15, disclosures_per_interval=0)


class TestMuTeslaAuthentication:
    def test_loss_free_run(self, sender, receiver):
        events = run_intervals(sender, receiver, 15)
        assert len(outcomes(events, AuthOutcome.AUTHENTICATED)) == 13
        assert receiver.stats.forged_accepted == 0

    def test_lost_disclosure_recovered_by_later_one(self, sender, receiver):
        """Key chain recovery: losing the disclosure of K_1 is healed by
        the disclosure of K_2 (one extra interval of latency)."""
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        deliver(receiver, sender.packets_for_interval(2), mid_interval(2))
        # interval 3 would disclose K_1 -- drop only that packet.
        packets = [
            p
            for p in sender.packets_for_interval(3)
            if not isinstance(p, KeyDisclosurePacket)
        ]
        deliver(receiver, packets, mid_interval(3))
        assert 1 not in receiver.authenticated_intervals
        deliver(receiver, sender.packets_for_interval(4), mid_interval(4))
        assert 1 in receiver.authenticated_intervals
        assert 2 in receiver.authenticated_intervals

    def test_forged_data_rejected_at_verification(self, sender, receiver):
        forged = MuTeslaDataPacket(2, b"f" * 25, b"\x00" * 10, provenance=FORGED)
        deliver(receiver, [forged], mid_interval(2))
        run_intervals(sender, receiver, 6)
        assert receiver.stats.rejected_forged >= 1
        assert receiver.stats.forged_accepted == 0

    def test_forged_disclosure_does_not_advance_chain(self, sender, receiver):
        forged = KeyDisclosurePacket(2, b"\xff" * 10, provenance=FORGED)
        events = deliver(receiver, [forged], mid_interval(4))
        assert outcomes(events, AuthOutcome.REJECTED_WEAK_AUTH)
        assert receiver.trusted_index == 0

    def test_forged_disclosure_then_authentic_still_works(self, sender, receiver):
        deliver(
            receiver, [KeyDisclosurePacket(2, b"\xff" * 10, provenance=FORGED)], 3.5
        )
        run_intervals(sender, receiver, 6)
        assert receiver.stats.authenticated >= 4
        assert receiver.stats.forged_accepted == 0

    def test_stale_data_discarded(self, sender, receiver):
        packet = sender.packets_for_interval(1)[0]
        events = deliver(receiver, [packet], mid_interval(4))
        assert outcomes(events, AuthOutcome.DISCARDED_UNSAFE)

    def test_wrong_packet_type_raises(self, receiver):
        with pytest.raises(TypeError):
            receiver.receive(42, 0.0)

    def test_expire_older_than(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        receiver.expire_older_than(9)
        assert receiver.buffered_bits == 0
        assert receiver.stats.expired_unverified == 1
