"""Wire-format size tests — the paper's bit accounting must be derivable."""

from __future__ import annotations

from repro.protocols.packets import (
    FORGED,
    LEGITIMATE,
    CdmPacket,
    KeyDisclosurePacket,
    MacAnnouncePacket,
    MessageKeyPacket,
    MicroMacRecord,
    MuTeslaDataPacket,
    StoredPacketRecord,
    TeslaPacket,
)

MSG = b"m" * 25
MAC = b"a" * 10
KEY = b"k" * 10


class TestWireSizes:
    def test_tesla_packet(self):
        packet = TeslaPacket(3, MSG, MAC, 1, KEY)
        assert packet.wire_bits == 32 + 32 + 200 + 80 + 80

    def test_tesla_packet_without_disclosure_is_smaller(self):
        packet = TeslaPacket(1, MSG, MAC, 0, None)
        assert packet.wire_bits == 32 + 32 + 200 + 80

    def test_mu_tesla_data(self):
        assert MuTeslaDataPacket(1, MSG, MAC).wire_bits == 32 + 200 + 80

    def test_key_disclosure(self):
        assert KeyDisclosurePacket(1, KEY).wire_bits == 32 + 80

    def test_mac_announce_is_112_bits(self):
        """Fig. 4: MACi (80b) + i (32b)."""
        assert MacAnnouncePacket(1, MAC).wire_bits == 112

    def test_message_key_is_312_bits(self):
        """Fig. 4: M (200b) + Ki (80b) + i (32b)."""
        assert MessageKeyPacket(1, MSG, KEY).wire_bits == 312

    def test_cdm_without_hash(self):
        packet = CdmPacket(2, KEY, MAC, 1, KEY)
        assert packet.wire_bits == 32 + 32 + 80 + 80 + 80

    def test_cdm_optional_fields_count_only_when_present(self):
        bare = CdmPacket(1, KEY, MAC, 0, None)
        assert bare.wire_bits == 32 + 32 + 80 + 80

    def test_cdm_with_edrp_hash_adds_80(self):
        plain = CdmPacket(1, KEY, MAC, 0, None)
        chained = CdmPacket(1, KEY, MAC, 0, None, next_cdm_hash=b"h" * 10)
        assert chained.wire_bits == plain.wire_bits + 80


class TestStoredSizes:
    def test_micro_mac_record_is_56_bits(self):
        """§IV-D: 24-bit μMAC + 32-bit index."""
        assert MicroMacRecord(1, b"u" * 3).stored_bits == 56

    def test_classic_record_is_280_bits(self):
        """§IV-D: 200-bit message + 80-bit MAC."""
        assert StoredPacketRecord(1, MSG, MAC).stored_bits == 280

    def test_dap_saves_80_percent(self):
        classic = StoredPacketRecord(1, MSG, MAC).stored_bits
        dap = MicroMacRecord(1, b"u" * 3).stored_bits
        assert dap / classic == 0.2

    def test_five_fold_buffer_multiplier(self):
        classic = StoredPacketRecord(1, MSG, MAC).stored_bits
        dap = MicroMacRecord(1, b"u" * 3).stored_bits
        assert classic // dap == 5


class TestProvenance:
    def test_default_is_legitimate(self):
        assert MacAnnouncePacket(1, MAC).provenance == LEGITIMATE

    def test_forged_tag(self):
        assert MacAnnouncePacket(1, MAC, provenance=FORGED).provenance == FORGED

    def test_provenance_excluded_from_equality(self):
        a = MacAnnouncePacket(1, MAC, provenance=LEGITIMATE)
        b = MacAnnouncePacket(1, MAC, provenance=FORGED)
        assert a == b  # protocol-visible fields identical

    def test_cdm_mac_payload_covers_identity(self):
        a = CdmPacket(1, KEY, MAC, 0, None)
        b = CdmPacket(2, KEY, MAC, 0, None)
        assert a.mac_payload() != b.mac_payload()
