"""Unit tests for the TESLA protocol."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.protocols.base import AuthOutcome
from repro.protocols.packets import FORGED, TeslaPacket
from repro.protocols.tesla import TeslaReceiver, TeslaSender
from tests.protocols.helpers import deliver, mid_interval, outcomes, run_intervals

SEED = b"tesla-seed"


@pytest.fixture
def sender():
    return TeslaSender(SEED, chain_length=20, disclosure_delay=2)


@pytest.fixture
def receiver(sender, condition_d2):
    return TeslaReceiver(sender.chain.commitment, condition_d2)


@pytest.fixture
def condition_d2(schedule, sync):
    from repro.timesync.sync import SecurityCondition

    return SecurityCondition(schedule, sync, disclosure_delay=2)


class TestTeslaSender:
    def test_packet_discloses_lagged_key(self, sender):
        packet = sender.packets_for_interval(5)[0]
        assert packet.disclosed_index == 3
        assert packet.disclosed_key == sender.chain.key(3)

    def test_no_disclosure_before_delay(self, sender):
        packet = sender.packets_for_interval(1)[0]
        assert packet.disclosed_key is None

    def test_mac_verifies_under_interval_key(self, sender, mac_scheme):
        packet = sender.packets_for_interval(4)[0]
        assert mac_scheme.verify(sender.chain.key(4), packet.message, packet.mac)

    def test_multiple_packets_per_interval(self):
        sender = TeslaSender(SEED, 10, packets_per_interval=3)
        packets = sender.packets_for_interval(2)
        assert len(packets) == 3
        assert len({p.message for p in packets}) == 3

    def test_bootstrap_contents(self, sender):
        boot = sender.bootstrap
        assert boot["commitment"] == sender.chain.commitment
        assert boot["disclosure_delay"] == 2

    def test_out_of_range_interval_rejected(self, sender):
        with pytest.raises(ConfigurationError):
            sender.packets_for_interval(0)
        with pytest.raises(ConfigurationError):
            sender.packets_for_interval(21)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            TeslaSender(SEED, 10, disclosure_delay=0)
        with pytest.raises(ConfigurationError):
            TeslaSender(SEED, 10, packets_per_interval=0)


class TestTeslaAuthentication:
    def test_loss_free_run_authenticates_everything(self, sender, receiver):
        events = run_intervals(sender, receiver, 20)
        # Keys disclosed with d=2: intervals 1..18 verifiable.
        assert len(outcomes(events, AuthOutcome.AUTHENTICATED)) == 18
        assert receiver.stats.forged_accepted == 0

    def test_verification_is_retroactive(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        assert receiver.stats.authenticated == 0
        deliver(receiver, sender.packets_for_interval(2), mid_interval(2))
        assert receiver.stats.authenticated == 0
        events = deliver(receiver, sender.packets_for_interval(3), mid_interval(3))
        assert len(outcomes(events, AuthOutcome.AUTHENTICATED)) == 1

    def test_packet_loss_tolerated(self, sender, receiver):
        """Losing interval 2 entirely: interval 1 and 3+ still verify."""
        for i in (1, 3, 4, 5, 6):
            deliver(receiver, sender.packets_for_interval(i), mid_interval(i))
        assert 1 in receiver.authenticated_intervals
        assert 3 in receiver.authenticated_intervals
        assert 2 not in receiver.authenticated_intervals

    def test_forged_mac_rejected(self, sender, receiver):
        forged = TeslaPacket(
            index=3,
            message=b"f" * 25,
            mac=b"\x00" * 10,
            disclosed_index=0,
            disclosed_key=None,
            provenance=FORGED,
        )
        deliver(receiver, [forged], mid_interval(3))
        run_intervals(sender, receiver, 6)
        assert receiver.stats.forged_accepted == 0
        assert receiver.stats.rejected_forged >= 1

    def test_forged_disclosure_rejected(self, sender, receiver):
        authentic = sender.packets_for_interval(4)[0]
        forged = dataclasses.replace(
            authentic, disclosed_key=b"\xff" * 10, provenance=FORGED
        )
        events = deliver(receiver, [forged], mid_interval(4))
        assert outcomes(events, AuthOutcome.REJECTED_WEAK_AUTH)
        assert receiver.trusted_index == 0

    def test_stale_packet_discarded_unsafe(self, sender, receiver):
        packet = sender.packets_for_interval(1)[0]
        events = deliver(receiver, [packet], mid_interval(5))
        assert outcomes(events, AuthOutcome.DISCARDED_UNSAFE)
        assert receiver.stats.authenticated == 0

    def test_replayed_packet_after_disclosure_cannot_authenticate(
        self, sender, receiver
    ):
        """An attacker replaying interval-1 packets after K_1 went public
        gets stopped by the security condition — TESLA's core defence."""
        run_intervals(sender, receiver, 5)
        authenticated_before = receiver.stats.authenticated
        replay = dataclasses.replace(
            sender.packets_for_interval(1)[0], provenance=FORGED
        )
        events = deliver(receiver, [replay], mid_interval(6))
        assert outcomes(events, AuthOutcome.DISCARDED_UNSAFE)
        assert receiver.stats.authenticated == authenticated_before

    def test_duplicate_copies_verify_once(self, sender, receiver):
        packets = list(sender.packets_for_interval(1)) * 3
        deliver(receiver, packets, mid_interval(1))
        events = deliver(receiver, sender.packets_for_interval(3), mid_interval(3))
        assert len(outcomes(events, AuthOutcome.AUTHENTICATED)) == 1

    def test_wrong_packet_type_raises(self, receiver):
        with pytest.raises(TypeError):
            receiver.receive(object(), 0.0)

    def test_buffer_memory_accounted(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        assert receiver.buffered_bits == 280
        assert receiver.stats.peak_buffer_bits >= 280

    def test_expire_older_than(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        events = receiver.expire_older_than(10)
        assert outcomes(events, AuthOutcome.EXPIRED_UNVERIFIED)
        assert receiver.buffered_bits == 0


class TestTeslaFloodingVulnerability:
    def test_keep_first_starves_under_front_loaded_flood(self, sender, condition_d2):
        """Classic TESLA with tiny buffers loses authentic packets to a
        front-loaded flood — the motivation for multi-buffer selection."""
        receiver = TeslaReceiver(
            sender.chain.commitment, condition_d2, buffer_capacity=2
        )
        for i in range(1, 8):
            forged = [
                TeslaPacket(i, b"f%02d" % j + b"x" * 22, b"\x00" * 10, 0, None, FORGED)
                for j in range(2)
            ]
            deliver(receiver, forged, mid_interval(i))
            deliver(receiver, sender.packets_for_interval(i), mid_interval(i))
        assert receiver.stats.authenticated == 0
        assert receiver.stats.forged_accepted == 0
