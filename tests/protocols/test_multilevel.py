"""Unit tests for multi-level μTESLA (and shared EFTP/EDRP machinery)."""

from __future__ import annotations

import random
from typing import Callable, Optional

import pytest

from repro.errors import ConfigurationError
from repro.protocols.base import AuthOutcome
from repro.protocols.multilevel import (
    MultiLevelParams,
    MultiLevelReceiver,
    MultiLevelSender,
    cdm_digest_payload,
)
from repro.protocols.packets import (
    FORGED,
    CdmPacket,
    KeyDisclosurePacket,
    MuTeslaDataPacket,
)
from repro.timesync.intervals import TwoLevelSchedule
from repro.timesync.sync import LooseTimeSync

SEED = b"multilevel-seed"
LOW_PER_HIGH = 4


def make_params(**overrides) -> MultiLevelParams:
    defaults = dict(
        high_length=8,
        low_length=LOW_PER_HIGH,
        high_disclosure_delay=1,
        low_disclosure_delay=2,
        cdm_copies=4,
        packets_per_low_interval=1,
    )
    defaults.update(overrides)
    return MultiLevelParams(**defaults)


@pytest.fixture
def params():
    return make_params()


@pytest.fixture
def two_level():
    return TwoLevelSchedule(0.0, 1.0, LOW_PER_HIGH)


@pytest.fixture
def sender(params):
    return MultiLevelSender(SEED, params)


def make_receiver(sender, two_level, params, **overrides) -> MultiLevelReceiver:
    kwargs = dict(
        high_commitment=sender.chain.high_chain.commitment,
        schedule=two_level,
        sync=LooseTimeSync(0.01),
        params=params,
        cdm_buffers=4,
        rng=random.Random(11),
    )
    kwargs.update(overrides)
    receiver = MultiLevelReceiver(**kwargs)
    receiver.bootstrap_commitment(1, sender.chain.low_commitment(1))
    return receiver


def run_flat_intervals(
    sender,
    receiver,
    flats: int,
    packet_filter: Optional[Callable[[object, int], bool]] = None,
):
    """Deliver flat intervals 1..flats mid-interval, with optional loss."""
    events = []
    for flat in range(1, flats + 1):
        now = flat - 0.5
        for packet in sender.packets_for_interval(flat):
            if packet_filter is not None and not packet_filter(packet, flat):
                continue
            events.extend(receiver.receive(packet, now))
    return events


class TestMultiLevelParams:
    def test_split_flatten_roundtrip(self, params):
        for flat in range(1, 33):
            assert params.flatten(*params.split(flat)) == flat

    def test_total_low_intervals(self, params):
        assert params.total_low_intervals == 32

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_params(high_length=1)
        with pytest.raises(ConfigurationError):
            make_params(low_length=0)
        with pytest.raises(ConfigurationError):
            make_params(cdm_copies=0)
        with pytest.raises(ConfigurationError):
            make_params(low_disclosure_delay=0)


class TestMultiLevelSender:
    def test_cdm_distributes_next_commitment(self, sender):
        cdm = sender.cdm(2)
        assert cdm.low_commitment == sender.chain.low_commitment(3)

    def test_cdm_discloses_lagged_high_key(self, sender):
        cdm = sender.cdm(3)
        assert cdm.disclosed_index == 2
        assert cdm.disclosed_key == sender.chain.high_key(2)

    def test_first_cdm_has_no_disclosure(self, sender):
        assert sender.cdm(1).disclosed_key is None

    def test_cdm_copies_spread_over_sub_intervals(self, sender, params):
        per_sub = [
            sum(
                1
                for p in sender.packets_for_interval(params.flatten(2, sub))
                if isinstance(p, CdmPacket)
            )
            for sub in range(1, LOW_PER_HIGH + 1)
        ]
        assert sum(per_sub) == params.cdm_copies
        assert max(per_sub) - min(per_sub) <= 1

    def test_data_macs_use_low_key(self, sender, mac_scheme, params):
        flat = params.flatten(2, 3)
        data = [
            p
            for p in sender.packets_for_interval(flat)
            if isinstance(p, MuTeslaDataPacket)
        ][0]
        assert mac_scheme.verify(sender.chain.low_key(2, 3), data.message, data.mac)

    def test_low_disclosures_cross_high_boundary(self, sender, params):
        """Keys of the last sub-intervals disclose in the next high interval."""
        flat = params.flatten(3, 1)  # discloses flat - 2 = (2, 3)
        keys = [
            p
            for p in sender.packets_for_interval(flat)
            if isinstance(p, KeyDisclosurePacket)
        ]
        assert keys[0].index == flat - 2
        assert keys[0].key == sender.chain.low_key(2, 3)

    def test_no_hash_chain_by_default(self, sender):
        assert sender.cdm(1).next_cdm_hash is None

    def test_out_of_range_flat_rejected(self, sender, params):
        with pytest.raises(ConfigurationError):
            sender.packets_for_interval(params.total_low_intervals + 1)


class TestMultiLevelAuthentication:
    def test_loss_free_run(self, sender, two_level, params):
        receiver = make_receiver(sender, two_level, params)
        events = run_flat_intervals(sender, receiver, 24)
        authenticated = [
            e for e in events if e.outcome is AuthOutcome.AUTHENTICATED
        ]
        # all but the trailing low_disclosure_delay intervals verify
        assert len(authenticated) == 24 - params.low_disclosure_delay
        assert receiver.stats.forged_accepted == 0
        assert receiver.cdm_stats.forged_accepted == 0

    def test_cdms_authenticate_via_high_disclosure(self, sender, two_level, params):
        receiver = make_receiver(sender, two_level, params)
        run_flat_intervals(sender, receiver, 12)
        assert receiver.cdm_stats.authenticated >= 2
        assert 2 in receiver.known_commitments
        assert 3 in receiver.known_commitments

    def test_forged_cdm_copies_never_accepted(self, sender, two_level, params):
        receiver = make_receiver(sender, two_level, params)
        rng = random.Random(5)

        for flat in range(1, 13):
            now = flat - 0.5
            high = params.split(flat)[0]
            forged = CdmPacket(
                high_index=high,
                low_commitment=bytes(rng.getrandbits(8) for _ in range(10)),
                mac=bytes(rng.getrandbits(8) for _ in range(10)),
                disclosed_index=0,
                disclosed_key=None,
                provenance=FORGED,
            )
            receiver.receive(forged, now)
            for packet in sender.packets_for_interval(flat):
                receiver.receive(packet, now)
        assert receiver.cdm_stats.forged_accepted == 0
        assert receiver.cdm_stats.copies_forged > 0
        # authentic commitments still learned despite the flood
        assert 2 in receiver.known_commitments

    def test_commitment_recovery_when_all_cdms_lost(self, sender, two_level, params):
        """Drop every CDM carrying chain 3's commitment (i.e. CDM_2);
        the receiver rebuilds it from a later disclosed high key."""
        receiver = make_receiver(sender, two_level, params)

        def drop_cdm2_commitment(packet, _flat):
            return not (isinstance(packet, CdmPacket) and packet.high_index == 2)

        run_flat_intervals(sender, receiver, 20, drop_cdm2_commitment)
        assert 3 in receiver.known_commitments
        assert receiver.cdm_stats.recovered_commitments >= 1

    def test_recovery_disabled_loses_chain(self, sender, two_level):
        params = make_params(key_chain_recovery=False)
        sender = MultiLevelSender(SEED, params)
        receiver = make_receiver(sender, two_level, params)

        def drop_cdm2(packet, _flat):
            return not (isinstance(packet, CdmPacket) and packet.high_index == 2)

        run_flat_intervals(sender, receiver, 20, drop_cdm2)
        assert 3 not in receiver.known_commitments

    def test_data_before_commitment_buffers_then_verifies(
        self, sender, two_level, params
    ):
        """Data for chain 2 arriving before CDM_1 authenticates is held
        and verified once the commitment (and keys) arrive."""
        receiver = make_receiver(sender, two_level, params)

        def drop_early_cdms(packet, flat):
            return not (isinstance(packet, CdmPacket) and flat <= 6)

        events = run_flat_intervals(sender, receiver, 16, drop_early_cdms)
        authenticated = {
            e.index for e in events if e.outcome is AuthOutcome.AUTHENTICATED
        }
        # chain-2 flats are 5..8; they must eventually authenticate
        assert {5, 6, 7, 8} <= authenticated

    def test_stale_low_data_discarded(self, sender, two_level, params):
        receiver = make_receiver(sender, two_level, params)
        data = [
            p
            for p in sender.packets_for_interval(1)
            if isinstance(p, MuTeslaDataPacket)
        ][0]
        events = receiver.receive(data, 10.5)
        assert any(e.outcome is AuthOutcome.DISCARDED_UNSAFE for e in events)

    def test_forged_low_disclosure_rejected(self, sender, two_level, params):
        receiver = make_receiver(sender, two_level, params)
        run_flat_intervals(sender, receiver, 4)
        forged = KeyDisclosurePacket(2, b"\xff" * 10, provenance=FORGED)
        events = receiver.receive(forged, 4.5)
        assert any(e.outcome is AuthOutcome.REJECTED_WEAK_AUTH for e in events)

    def test_mismatched_schedule_rejected(self, sender, params):
        bad = TwoLevelSchedule(0.0, 1.0, LOW_PER_HIGH + 1)
        with pytest.raises(ConfigurationError):
            MultiLevelReceiver(
                high_commitment=sender.chain.high_chain.commitment,
                schedule=bad,
                sync=LooseTimeSync(0.01),
                params=params,
            )

    def test_wrong_packet_type_raises(self, sender, two_level, params):
        receiver = make_receiver(sender, two_level, params)
        with pytest.raises(TypeError):
            receiver.receive(object(), 0.0)

    def test_bootstrap_commitment_validation(self, sender, two_level, params):
        receiver = make_receiver(sender, two_level, params)
        with pytest.raises(ConfigurationError):
            receiver.bootstrap_commitment(0, b"x" * 10)

    def test_memory_accounting_tracks_cdm_and_data(self, sender, two_level, params):
        receiver = make_receiver(sender, two_level, params)
        run_flat_intervals(sender, receiver, 6)
        assert receiver.stats.peak_buffer_bits > 0

    def test_expire_older_than_frees_stale_state(self, sender, two_level):
        """Data whose keys never arrive is abandoned on request."""
        params = make_params(key_chain_recovery=False)
        sender = MultiLevelSender(SEED, params)
        receiver = make_receiver(sender, two_level, params)

        def drop_all_cdms_and_disclosures(packet, _flat):
            return isinstance(packet, MuTeslaDataPacket)

        run_flat_intervals(sender, receiver, 12, drop_all_cdms_and_disclosures)
        assert receiver.buffered_bits > 0
        events = receiver.expire_older_than(13)
        assert any(
            e.outcome is AuthOutcome.EXPIRED_UNVERIFIED for e in events
        )
        assert receiver.buffered_bits == 0
        assert receiver.stats.expired_unverified > 0

    def test_expire_validation(self, sender, two_level, params):
        receiver = make_receiver(sender, two_level, params)
        with pytest.raises(ConfigurationError):
            receiver.expire_older_than(0)


class TestCdmDigestPayload:
    def test_covers_all_identity_fields(self):
        base = CdmPacket(1, b"c" * 10, b"m" * 10, 0, None, next_cdm_hash=b"h" * 10)
        assert cdm_digest_payload(base) != cdm_digest_payload(
            CdmPacket(2, b"c" * 10, b"m" * 10, 0, None, next_cdm_hash=b"h" * 10)
        )
        assert cdm_digest_payload(base) != cdm_digest_payload(
            CdmPacket(1, b"x" * 10, b"m" * 10, 0, None, next_cdm_hash=b"h" * 10)
        )
        assert cdm_digest_payload(base) != cdm_digest_payload(
            CdmPacket(1, b"c" * 10, b"x" * 10, 0, None, next_cdm_hash=b"h" * 10)
        )
        assert cdm_digest_payload(base) != cdm_digest_payload(
            CdmPacket(1, b"c" * 10, b"m" * 10, 0, None, next_cdm_hash=b"x" * 10)
        )
