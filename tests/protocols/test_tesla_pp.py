"""Unit tests for TESLA++ and the DAP-vs-TESLA++ behavioural contrast."""

from __future__ import annotations

import random

import pytest

from repro.protocols.base import AuthOutcome
from repro.protocols.dap import DapReceiver
from repro.protocols.packets import FORGED, MacAnnouncePacket, MessageKeyPacket
from repro.protocols.tesla_pp import TeslaPlusPlusReceiver, TeslaPlusPlusSender
from tests.protocols.helpers import deliver, mid_interval, outcomes, run_intervals

SEED = b"teslapp-seed"
LOCAL = b"receiver-local-key"


@pytest.fixture
def sender():
    return TeslaPlusPlusSender(SEED, chain_length=15)


@pytest.fixture
def receiver(sender, condition, rng):
    return TeslaPlusPlusReceiver(
        sender.chain.commitment, condition, LOCAL, buffers=3, rng=rng
    )


class TestTeslaPlusPlus:
    def test_loss_free_run(self, sender, receiver):
        events = run_intervals(sender, receiver, 15)
        assert len(outcomes(events, AuthOutcome.AUTHENTICATED)) == 14
        assert receiver.stats.forged_accepted == 0

    def test_record_is_112_bits(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        assert receiver.record_bits == 112
        assert receiver.buffered_bits == 112

    def test_records_wider_than_dap(self, sender, condition, rng):
        teslapp = TeslaPlusPlusReceiver(
            sender.chain.commitment, condition, LOCAL, rng=rng
        )
        assert teslapp.record_bits == 2 * 56

    def test_forged_reveal_rejected(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        forged = MessageKeyPacket(1, b"f" * 25, b"\xff" * 10, provenance=FORGED)
        events = deliver(receiver, [forged], mid_interval(2))
        assert outcomes(events, AuthOutcome.REJECTED_WEAK_AUTH)

    def test_wrong_packet_type_raises(self, receiver):
        with pytest.raises(TypeError):
            receiver.receive(3.14, 0.0)

    def test_expire_frees_memory(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        receiver.expire_older_than(10)
        assert receiver.buffered_bits == 0


class TestKeepFirstVsReservoir:
    """The behavioural gap the paper's buffer-selection rule closes."""

    def _run_front_loaded_flood(self, receiver, sender, intervals, forged_per):
        rng = random.Random(17)
        authenticated = 0
        for i in range(1, intervals + 1):
            now = mid_interval(i)
            flood = [
                MacAnnouncePacket(
                    i, bytes(rng.getrandbits(8) for _ in range(10)), provenance=FORGED
                )
                for _ in range(forged_per)
            ]
            packets = sender.packets_for_interval(i)
            announces = [p for p in packets if isinstance(p, MacAnnouncePacket)]
            reveals = [p for p in packets if isinstance(p, MessageKeyPacket)]
            deliver(receiver, flood, now)  # flood arrives FIRST
            deliver(receiver, announces, now)
            events = deliver(receiver, reveals, now)
            authenticated += len(outcomes(events, AuthOutcome.AUTHENTICATED))
        return authenticated

    def test_keep_first_starved_by_front_loaded_flood(self, condition):
        sender = TeslaPlusPlusSender(SEED, 41, announce_copies=3)
        receiver = TeslaPlusPlusReceiver(
            sender.chain.commitment, condition, LOCAL, buffers=3,
            rng=random.Random(1),
        )
        authenticated = self._run_front_loaded_flood(receiver, sender, 40, 10)
        assert authenticated == 0
        assert receiver.stats.forged_accepted == 0

    def test_dap_reservoir_survives_same_flood(self, condition):
        from repro.protocols.dap import DapSender

        sender = DapSender(SEED, 41, announce_copies=3)
        receiver = DapReceiver(
            sender.chain.commitment, condition, LOCAL, buffers=3,
            rng=random.Random(1),
        )
        authenticated = self._run_front_loaded_flood(receiver, sender, 40, 10)
        # 3 authentic of 13 copies, m=3: survival = 1 - C(10,3)/C(13,3).
        assert authenticated > 10
        assert receiver.stats.forged_accepted == 0
