"""Unit tests for chain renewal (multi-epoch DAP)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.protocols.base import AuthOutcome
from repro.protocols.messages import default_message
from repro.protocols.packets import FORGED, MacAnnouncePacket, MessageKeyPacket
from repro.protocols.renewal import (
    RENEWAL_TAG,
    RenewingDapReceiver,
    RenewingDapSender,
    encode_renewal,
    parse_renewal,
)
from repro.timesync.sync import LooseTimeSync

SEED = b"renewal-seed"
LOCAL = b"local-key"
EPOCH = 8


@pytest.fixture
def sender():
    return RenewingDapSender(
        SEED, epoch_length=EPOCH, epochs=3, renewal_lead=3, announce_copies=2
    )


@pytest.fixture
def receiver(sender):
    return RenewingDapReceiver(
        first_commitment=sender.chain(0).commitment,
        epoch_length=EPOCH,
        interval_duration=1.0,
        sync=LooseTimeSync(0.01),
        local_key=LOCAL,
        buffers=4,
        rng=random.Random(1),
    )


def run(sender, receiver, first=1, last=None, drop=None):
    last = last or sender.total_intervals
    events = []
    for g in range(first, last + 1):
        now = g - 0.5
        for packet in sender.packets_for_interval(g):
            if drop is not None and drop(packet, g):
                continue
            events.extend(receiver.receive(packet, now))
    return events


class TestEncoding:
    def test_roundtrip(self):
        commitment = b"\xab" * 10
        assert parse_renewal(encode_renewal(commitment)) == commitment

    def test_ordinary_message_is_not_renewal(self):
        assert parse_renewal(default_message(3)) is None

    def test_encoded_is_paper_sized(self):
        assert len(encode_renewal(b"\x01" * 10)) == 25

    def test_bad_commitment_size_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_renewal(b"short")

    def test_tag_collision_with_payload_prefix(self):
        """A sensing payload starting with the tag parses as a handoff —
        callers must namespace payloads; the tag includes a NUL to make
        accidental collisions implausible."""
        fake = RENEWAL_TAG + b"\x07" * 10 + b"\x00" * 9
        assert parse_renewal(fake) == b"\x07" * 10


class TestSender:
    def test_handoff_in_trailing_intervals_only(self, sender):
        # epoch 0 covers globals 1..8; lead 3 -> handoffs in 6, 7, 8
        def handoff_announced(g):
            packets = sender.packets_for_interval(g)
            announces = [p for p in packets if isinstance(p, MacAnnouncePacket)]
            return len(announces) > 2  # 1 message * 2 copies + handoff copies

        assert not handoff_announced(3)
        assert handoff_announced(6)
        assert handoff_announced(8)

    def test_last_epoch_has_no_handoff(self, sender):
        packets = sender.packets_for_interval(sender.total_intervals)
        announces = [p for p in packets if isinstance(p, MacAnnouncePacket)]
        assert len(announces) == 2

    def test_boundary_reveal_uses_owning_chain(self, sender, mac_scheme):
        """Interval 8 (epoch 0) is revealed during interval 9 (epoch 1)
        with epoch 0's key."""
        packets = sender.packets_for_interval(EPOCH + 1)
        reveals = [p for p in packets if isinstance(p, MessageKeyPacket)]
        assert reveals
        assert all(r.index == EPOCH for r in reveals)
        assert reveals[0].key == sender.chain(0).key(EPOCH)

    def test_epoch_chains_are_independent(self, sender):
        assert sender.chain(0).commitment != sender.chain(1).commitment

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RenewingDapSender(SEED, epoch_length=2, epochs=2)
        with pytest.raises(ConfigurationError):
            RenewingDapSender(SEED, epoch_length=8, epochs=0)
        with pytest.raises(ConfigurationError):
            RenewingDapSender(SEED, epoch_length=8, epochs=2, renewal_lead=8)
        with pytest.raises(ConfigurationError):
            sender = RenewingDapSender(SEED, epoch_length=8, epochs=2)
            sender.packets_for_interval(17)
        with pytest.raises(ConfigurationError):
            RenewingDapSender(SEED, epoch_length=8, epochs=2).chain(5)


class TestRenewalProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=15, deadline=None)
    def test_loss_free_run_renews_every_epoch(self, epoch_length, epochs, lead):
        sender = RenewingDapSender(
            SEED, epoch_length=epoch_length, epochs=epochs, renewal_lead=lead
        )
        receiver = RenewingDapReceiver(
            first_commitment=sender.chain(0).commitment,
            epoch_length=epoch_length,
            interval_duration=1.0,
            sync=LooseTimeSync(0.01),
            local_key=LOCAL,
            rng=random.Random(1),
        )
        run(sender, receiver)
        assert receiver.known_epochs == list(range(epochs))
        assert receiver.renewed_epochs == set(range(1, epochs))
        assert receiver.stats.forged_accepted == 0

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_handoff_payloads_roundtrip(self, epoch):
        sender = RenewingDapSender(SEED, epoch_length=8, epochs=3)
        commitment = sender.chain(epoch % 3).commitment
        assert parse_renewal(encode_renewal(commitment)) == commitment


class TestReceiver:
    def test_seamless_three_epoch_run(self, sender, receiver):
        events = run(sender, receiver)
        authenticated = [e for e in events if e.outcome is AuthOutcome.AUTHENTICATED]
        # all intervals except the very last (never revealed) produce at
        # least their sensing message; handoffs add more.
        sensing = [
            e for e in authenticated if parse_renewal(e.message) is None
        ]
        assert len(sensing) == sender.total_intervals - 1
        assert receiver.known_epochs == [0, 1, 2]
        assert receiver.renewed_epochs == {1, 2}
        assert receiver.stats.forged_accepted == 0

    def test_global_indices_in_events(self, sender, receiver):
        events = run(sender, receiver, last=EPOCH + 2)
        indices = {e.index for e in events if e.outcome is AuthOutcome.AUTHENTICATED}
        assert EPOCH in indices  # boundary interval, revealed in epoch 1

    def test_lost_handoff_orphans_next_epoch(self, sender, receiver):
        def drop_handoffs(packet, _g):
            if isinstance(packet, MessageKeyPacket):
                return parse_renewal(packet.message) is not None
            return False

        run(sender, receiver, drop=drop_handoffs)
        assert receiver.known_epochs == [0]
        assert receiver.orphaned_epochs == {1, 2}
        assert receiver.orphaned_packets > 0

    def test_single_surviving_handoff_suffices(self, sender, receiver):
        seen = {"count": 0}

        def drop_all_but_first_handoff(packet, _g):
            if isinstance(packet, MessageKeyPacket) and parse_renewal(
                packet.message
            ) is not None:
                seen["count"] += 1
                return seen["count"] > 1
            return False

        run(sender, receiver, drop=drop_all_but_first_handoff)
        assert 1 in receiver.known_epochs

    def test_forged_handoff_cannot_hijack_the_chain(self, sender, receiver):
        """An attacker injecting a handoff for its own chain commitment
        fails strong authentication, so the real epoch 1 still works."""
        forged_commitment = b"\xee" * 10
        forged = MessageKeyPacket(
            6, encode_renewal(forged_commitment), b"\xee" * 10, provenance=FORGED
        )
        receiver.receive(forged, 5.5)
        run(sender, receiver)
        assert receiver.known_epochs == [0, 1, 2]
        # the receiver's epoch-1 commitment matches the authentic sender
        assert receiver.renewed_epochs == {1, 2}
        assert receiver.stats.forged_accepted == 0

    def test_handoff_survives_flooding(self, sender):
        receiver = RenewingDapReceiver(
            first_commitment=sender.chain(0).commitment,
            epoch_length=EPOCH,
            interval_duration=1.0,
            sync=LooseTimeSync(0.01),
            local_key=LOCAL,
            buffers=6,
            rng=random.Random(3),
        )
        rng = random.Random(9)
        events = []
        for g in range(1, sender.total_intervals + 1):
            now = g - 0.5
            for _ in range(6):  # flood forged announcements every interval
                events.extend(
                    receiver.receive(
                        MacAnnouncePacket(
                            g,
                            bytes(rng.getrandbits(8) for _ in range(10)),
                            provenance=FORGED,
                        ),
                        now,
                    )
                )
            for packet in sender.packets_for_interval(g):
                events.extend(receiver.receive(packet, now))
        # With 3 redundant handoffs per boundary and 6 buffers, at least
        # one handoff record survives whp; epochs renew.
        assert receiver.known_epochs == [0, 1, 2]
        assert receiver.stats.forged_accepted == 0

    def test_wrong_packet_type_raises(self, receiver):
        with pytest.raises(TypeError):
            receiver.receive(object(), 0.0)

    def test_validation(self, sender):
        with pytest.raises(ConfigurationError):
            RenewingDapReceiver(
                first_commitment=sender.chain(0).commitment,
                epoch_length=2,
                interval_duration=1.0,
                sync=LooseTimeSync(0.01),
                local_key=LOCAL,
            )
