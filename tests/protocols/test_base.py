"""Unit tests for the shared protocol interfaces and stats accounting."""

from __future__ import annotations

import pytest

from repro.protocols.base import AuthEvent, AuthOutcome, ReceiverStats
from repro.protocols.packets import FORGED, LEGITIMATE


class TestReceiverStats:
    def test_record_authenticated(self):
        stats = ReceiverStats()
        stats.record(AuthEvent(1, AuthOutcome.AUTHENTICATED))
        assert stats.authenticated == 1
        assert stats.forged_accepted == 0

    def test_forged_authentication_flagged(self):
        """The invariant counter: a forged packet reaching AUTHENTICATED
        must be visible, loudly."""
        stats = ReceiverStats()
        stats.record(AuthEvent(1, AuthOutcome.AUTHENTICATED, provenance=FORGED))
        assert stats.forged_accepted == 1

    @pytest.mark.parametrize(
        "outcome,attr",
        [
            (AuthOutcome.REJECTED_FORGED, "rejected_forged"),
            (AuthOutcome.REJECTED_WEAK_AUTH, "rejected_weak_auth"),
            (AuthOutcome.DISCARDED_UNSAFE, "discarded_unsafe"),
            (AuthOutcome.LOST_NO_RECORD, "lost_no_record"),
            (AuthOutcome.DROPPED_NO_BUFFER, "dropped_no_buffer"),
            (AuthOutcome.EXPIRED_UNVERIFIED, "expired_unverified"),
        ],
    )
    def test_every_outcome_has_a_counter(self, outcome, attr):
        stats = ReceiverStats()
        stats.record(AuthEvent(1, outcome))
        assert getattr(stats, attr) == 1

    def test_by_outcome_histogram(self):
        stats = ReceiverStats()
        for _ in range(3):
            stats.record(AuthEvent(1, AuthOutcome.AUTHENTICATED))
        stats.record(AuthEvent(2, AuthOutcome.REJECTED_FORGED))
        assert stats.by_outcome[AuthOutcome.AUTHENTICATED] == 3
        assert stats.by_outcome[AuthOutcome.REJECTED_FORGED] == 1
        assert stats.resolved == 4

    def test_authentication_rate(self):
        stats = ReceiverStats()
        for _ in range(7):
            stats.record(AuthEvent(1, AuthOutcome.AUTHENTICATED))
        assert stats.authentication_rate(10) == pytest.approx(0.7)

    def test_authentication_rate_degenerate_denominator(self):
        assert ReceiverStats().authentication_rate(0) == 0.0


class TestAuthEvent:
    def test_defaults(self):
        event = AuthEvent(5, AuthOutcome.AUTHENTICATED)
        assert event.provenance == LEGITIMATE
        assert event.message is None

    def test_frozen(self):
        event = AuthEvent(5, AuthOutcome.AUTHENTICATED)
        with pytest.raises(Exception):
            event.index = 6  # type: ignore[misc]

    def test_outcome_values_are_stable_api(self):
        """Outcome strings are part of the public surface (metrics,
        journals, examples); renaming one is a breaking change."""
        assert {o.value for o in AuthOutcome} == {
            "authenticated",
            "rejected_forged",
            "rejected_weak_auth",
            "discarded_unsafe",
            "lost_no_record",
            "dropped_no_buffer",
            "expired_unverified",
        }
