"""Unit tests for EDRP: hash-chained CDMs and authentication continuity."""

from __future__ import annotations

import random

import pytest

from repro.crypto.onewayfn import standard_functions
from repro.errors import ConfigurationError
from repro.protocols.edrp import EdrpReceiver, EdrpSender, edrp_params
from repro.protocols.multilevel import cdm_digest_payload
from repro.protocols.packets import FORGED, CdmPacket
from repro.timesync.intervals import TwoLevelSchedule
from repro.timesync.sync import LooseTimeSync
from tests.protocols.test_multilevel import make_params, run_flat_intervals

SEED = b"edrp-seed"
LOW_PER_HIGH = 4


@pytest.fixture
def two_level():
    return TwoLevelSchedule(0.0, 1.0, LOW_PER_HIGH)


@pytest.fixture
def params():
    return edrp_params(make_params())


@pytest.fixture
def sender(params):
    return EdrpSender(SEED, params)


@pytest.fixture
def receiver(sender, two_level, params):
    receiver = EdrpReceiver(
        sender.chain.high_chain.commitment,
        two_level,
        LooseTimeSync(0.01),
        params,
        cdm_buffers=4,
        rng=random.Random(9),
    )
    receiver.bootstrap_commitment(1, sender.chain.low_commitment(1))
    return receiver


class TestEdrpConfiguration:
    def test_params_helper(self, params):
        assert params.cdm_hash_chaining
        assert params.key_chain_recovery

    def test_sender_requires_chaining(self):
        with pytest.raises(ConfigurationError):
            EdrpSender(SEED, make_params())

    def test_receiver_requires_chaining(self, sender, two_level):
        with pytest.raises(ConfigurationError):
            EdrpReceiver(
                sender.chain.high_chain.commitment,
                two_level,
                LooseTimeSync(0.01),
                make_params(),
            )


class TestEdrpHashChain:
    def test_cdms_carry_next_hash(self, sender):
        fns = standard_functions()
        cdm1 = sender.cdm(1)
        cdm2 = sender.cdm(2)
        assert cdm1.next_cdm_hash == fns["H"](cdm_digest_payload(cdm2))

    def test_last_cdm_has_no_next_hash(self, sender, params):
        assert sender.cdm(params.high_length).next_cdm_hash is None

    def test_hash_adds_80_wire_bits(self, sender):
        # CDM_2 carries both a disclosed key and the EDRP hash.
        plain_with_disclosure = CdmPacket(2, b"c" * 10, b"m" * 10, 1, b"k" * 10)
        assert sender.cdm(2).wire_bits == plain_with_disclosure.wire_bits + 80


class TestEdrpBehaviour:
    def test_immediate_hash_authentication_fires(self, sender, receiver):
        """Once CDM_i authenticates, the next CDM authenticates on first
        arrival — no buffering round-trip."""
        run_flat_intervals(sender, receiver, 16)
        assert receiver.cdm_stats.immediate_hash_auth >= 1

    def test_forged_cdm_fails_hash_check(self, sender, receiver):
        run_flat_intervals(sender, receiver, 10)
        # Find a high interval whose hash is pinned but not yet authenticated.
        target = max(receiver.cdm_stats.authenticated + 1, 3)
        forged = CdmPacket(
            high_index=target,
            low_commitment=b"\x00" * 10,
            mac=b"\x00" * 10,
            disclosed_index=0,
            disclosed_key=None,
            next_cdm_hash=b"\x00" * 10,
            provenance=FORGED,
        )
        before = receiver.cdm_stats.authenticated
        receiver.receive(forged, 9.5)
        assert receiver.cdm_stats.forged_accepted == 0
        assert receiver.cdm_stats.authenticated == before

    def test_continuity_under_high_disclosure_loss(self, sender, receiver, params):
        """Even when every disclosed high key is stripped from CDMs after
        interval 2, hash chaining keeps authenticating CDMs."""
        import dataclasses

        def strip_late_disclosures(packet, _flat):
            return True

        events = []
        for flat in range(1, 29):
            now = flat - 0.5
            for packet in sender.packets_for_interval(flat):
                if isinstance(packet, CdmPacket) and packet.high_index > 2:
                    packet = dataclasses.replace(
                        packet, disclosed_key=None, disclosed_index=0
                    )
                events.extend(receiver.receive(packet, now))
        # CDMs beyond interval 2 cannot authenticate via key disclosure
        # (none arrive), yet the hash chain keeps the sequence alive.
        assert receiver.cdm_stats.immediate_hash_auth >= 3
        assert receiver.cdm_stats.authenticated >= 4

    def test_loss_free_run(self, sender, receiver, params):
        events = run_flat_intervals(sender, receiver, 24)
        authenticated = [e for e in events if e.outcome.value == "authenticated"]
        assert len(authenticated) == 24 - params.low_disclosure_delay
        assert receiver.stats.forged_accepted == 0
