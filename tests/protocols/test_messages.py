"""Tests for deterministic message payload generation."""

from __future__ import annotations

from repro.protocols.messages import (
    MESSAGE_BYTES,
    default_message,
    forged_message,
)


class TestDefaultMessage:
    def test_size_is_25_bytes(self):
        assert len(default_message(1)) == MESSAGE_BYTES == 25

    def test_deterministic(self):
        assert default_message(3, 1) == default_message(3, 1)

    def test_distinct_per_interval(self):
        assert default_message(1) != default_message(2)

    def test_distinct_per_copy(self):
        assert default_message(1, 0) != default_message(1, 1)


class TestForgedMessage:
    def test_size(self):
        assert len(forged_message(1)) == MESSAGE_BYTES

    def test_never_collides_with_authentic(self):
        for i in range(50):
            assert forged_message(i) != default_message(i)

    def test_distinct_per_nonce(self):
        assert forged_message(1, 0) != forged_message(1, 1)
