"""Unit tests for DAP (Algorithms 1 and 2)."""

from __future__ import annotations

import random

import pytest

from repro.protocols.base import AuthOutcome
from repro.protocols.dap import DapReceiver, DapSender
from repro.protocols.packets import (
    FORGED,
    MacAnnouncePacket,
    MessageKeyPacket,
)
from tests.protocols.helpers import deliver, mid_interval, outcomes, run_intervals

SEED = b"dap-seed"
LOCAL = b"receiver-local-key"


@pytest.fixture
def sender():
    return DapSender(SEED, chain_length=20, disclosure_delay=1)


@pytest.fixture
def receiver(sender, condition, rng):
    return DapReceiver(
        sender.chain.commitment, condition, LOCAL, buffers=4, rng=rng
    )


class TestDapSender:
    def test_announce_phase_has_no_message(self, sender):
        packets = sender.packets_for_interval(1)
        assert all(isinstance(p, MacAnnouncePacket) for p in packets)

    def test_reveal_follows_one_interval_later(self, sender):
        packets = sender.packets_for_interval(2)
        reveals = [p for p in packets if isinstance(p, MessageKeyPacket)]
        assert len(reveals) == 1
        assert reveals[0].index == 1
        assert reveals[0].key == sender.chain.key(1)

    def test_reveal_carries_the_announced_message(self, sender, mac_scheme):
        announce = sender.packets_for_interval(3)[0]
        reveal = next(
            p
            for p in sender.packets_for_interval(4)
            if isinstance(p, MessageKeyPacket)
        )
        assert mac_scheme.compute(reveal.key, reveal.message) == announce.mac

    def test_announce_copies(self):
        sender = DapSender(SEED, 10, announce_copies=4)
        announces = [
            p
            for p in sender.packets_for_interval(1)
            if isinstance(p, MacAnnouncePacket)
        ]
        assert len(announces) == 4

    def test_announce_is_112_bits(self, sender):
        assert sender.packets_for_interval(1)[0].wire_bits == 112


class TestDapAuthentication:
    def test_loss_free_run(self, sender, receiver):
        events = run_intervals(sender, receiver, 20)
        assert len(outcomes(events, AuthOutcome.AUTHENTICATED)) == 19
        assert receiver.stats.forged_accepted == 0

    def test_weak_auth_rejects_garbage_key(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        forged = MessageKeyPacket(1, b"f" * 25, b"\xff" * 10, provenance=FORGED)
        events = deliver(receiver, [forged], mid_interval(2))
        assert outcomes(events, AuthOutcome.REJECTED_WEAK_AUTH)

    def test_strong_auth_rejects_forged_message_with_real_key(
        self, sender, receiver
    ):
        """Replaying the genuine key with a different message passes weak
        auth but fails the μMAC comparison."""
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        forged = MessageKeyPacket(
            1, b"f" * 25, sender.chain.key(1), provenance=FORGED
        )
        events = deliver(receiver, [forged], mid_interval(2))
        assert outcomes(events, AuthOutcome.REJECTED_FORGED)
        assert receiver.stats.forged_accepted == 0

    def test_forged_announce_cannot_authenticate_anything(self, sender, receiver):
        """A forged MAC stored in the buffer never matches a reveal the
        attacker can actually produce (it would need the undisclosed key)."""
        forged_announce = MacAnnouncePacket(1, b"\x00" * 10, provenance=FORGED)
        deliver(receiver, [forged_announce] * 4, mid_interval(1))
        run_intervals(sender, receiver, 3)
        assert receiver.stats.forged_accepted == 0

    def test_stale_announce_discarded(self, sender, receiver):
        announce = sender.packets_for_interval(1)[0]
        events = deliver(receiver, [announce], mid_interval(3))
        assert outcomes(events, AuthOutcome.DISCARDED_UNSAFE)

    def test_lost_announce_means_lost_message(self, sender, receiver):
        """No buffered record -> the reveal cannot strong-authenticate."""
        reveal = next(
            p
            for p in sender.packets_for_interval(2)
            if isinstance(p, MessageKeyPacket)
        )
        events = deliver(receiver, [reveal], mid_interval(2))
        assert outcomes(events, AuthOutcome.LOST_NO_RECORD)

    def test_duplicate_reveal_resolves_once(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        reveal = next(
            p
            for p in sender.packets_for_interval(2)
            if isinstance(p, MessageKeyPacket)
        )
        first = deliver(receiver, [reveal], mid_interval(2))
        second = deliver(receiver, [reveal], mid_interval(2))
        assert len(outcomes(first, AuthOutcome.AUTHENTICATED)) == 1
        assert second == []

    def test_record_memory_is_56_bits_per_copy(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        assert receiver.buffered_bits == 56

    def test_expire_frees_memory(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        assert receiver.expire_older_than(10) == 1
        assert receiver.buffered_bits == 0

    def test_wrong_packet_type_raises(self, receiver):
        with pytest.raises(TypeError):
            receiver.receive("nope", 0.0)

    def test_observations_record_stored_and_matched(self, sender, receiver):
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        deliver(receiver, sender.packets_for_interval(2), mid_interval(2))
        observations = receiver.observations
        assert observations == [(1, 1, 1)]

    def test_observations_see_forged_records(self, sender, receiver):
        forged = [
            MacAnnouncePacket(1, bytes([i]) * 10, provenance=FORGED)
            for i in range(3)
        ]
        deliver(receiver, forged, mid_interval(1))
        deliver(receiver, sender.packets_for_interval(1), mid_interval(1))
        deliver(receiver, sender.packets_for_interval(2), mid_interval(2))
        interval, stored, matched = receiver.observations[0]
        assert interval == 1
        assert stored == 4
        assert matched == 1

    def test_observation_log_is_bounded(self, condition, rng):
        """The reveal-observation journal must not grow unboundedly."""
        sender = DapSender(SEED, 1300)
        receiver = DapReceiver(
            sender.chain.commitment, condition, LOCAL, buffers=2, rng=rng
        )
        for interval in range(1, 1201):
            deliver(
                receiver, sender.packets_for_interval(interval), mid_interval(interval)
            )
        assert len(receiver.observations) <= 1024

    def test_old_records_released_after_reveal(self, sender, receiver):
        """Housekeeping: once interval i reveals, intervals < i - 1 are
        freed (one interval of reorder slack)."""
        for interval in range(1, 5):
            deliver(
                receiver, sender.packets_for_interval(interval), mid_interval(interval)
            )
        # reveal for interval 3 arrived in interval 4 -> interval 1 freed;
        # footprint stays at <= 3 outstanding intervals regardless of age.
        assert receiver.buffered_bits <= 3 * 56

    def test_reordered_adjacent_reveals_still_authenticate(self, sender, receiver):
        """The slack at work: interval 2's reveal arriving after interval
        3's must still find its record."""
        for interval in (1, 2, 3):
            for packet in sender.packets_for_interval(interval):
                if isinstance(packet, MessageKeyPacket):
                    continue  # hold all reveals back
                receiver.receive(packet, mid_interval(interval))
        reveal = lambda i: next(  # noqa: E731
            p
            for p in sender.packets_for_interval(i + 1)
            if isinstance(p, MessageKeyPacket)
        )
        receiver.receive(reveal(3), mid_interval(4))
        events = receiver.receive(reveal(2), mid_interval(4))
        assert outcomes(events, AuthOutcome.AUTHENTICATED)


class TestDapUnderFlood:
    def _flood_and_run(self, sender, receiver, p, intervals=30, copies=5):
        forged_per_interval = round(copies * p / (1 - p))
        rng = random.Random(99)
        authenticated = 0
        for i in range(1, intervals + 1):
            now = mid_interval(i)
            flood = [
                MacAnnouncePacket(
                    i, bytes(rng.getrandbits(8) for _ in range(10)), provenance=FORGED
                )
                for _ in range(forged_per_interval)
            ]
            announces = [
                p_
                for p_ in sender.packets_for_interval(i)
                if isinstance(p_, MacAnnouncePacket)
            ]
            reveals = [
                p_
                for p_ in sender.packets_for_interval(i)
                if isinstance(p_, MessageKeyPacket)
            ]
            deliver(receiver, flood, now)
            deliver(receiver, announces, now)
            events = deliver(receiver, reveals, now)
            authenticated += len(outcomes(events, AuthOutcome.AUTHENTICATED))
        return authenticated

    def test_survival_tracks_one_minus_p_to_the_m(self, condition):
        p, m, copies, intervals = 0.8, 3, 5, 200
        sender = DapSender(SEED, intervals + 1, announce_copies=copies)
        receiver = DapReceiver(
            sender.chain.commitment,
            condition,
            LOCAL,
            buffers=m,
            rng=random.Random(5),
        )
        authenticated = self._flood_and_run(sender, receiver, p, intervals, copies)
        survival = authenticated / (intervals - 1)
        # hypergeometric survival for 5 authentic + 20 forged, m = 3
        from math import comb

        expected = 1.0 - comb(20, m) / comb(25, m)
        assert survival == pytest.approx(expected, abs=0.1)
        assert receiver.stats.forged_accepted == 0

    def test_more_buffers_higher_survival(self, condition):
        results = {}
        for m in (1, 4, 12):
            sender = DapSender(SEED, 121, announce_copies=5)
            receiver = DapReceiver(
                sender.chain.commitment,
                condition,
                LOCAL,
                buffers=m,
                rng=random.Random(m),
            )
            results[m] = self._flood_and_run(sender, receiver, 0.8, 120, 5)
        assert results[1] < results[4] < results[12]
