"""Unit tests for EFTP: the re-wired chain and its recovery-latency win."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.protocols.eftp import EftpReceiver, EftpSender, eftp_params
from repro.protocols.multilevel import (
    MultiLevelParams,
    MultiLevelReceiver,
    MultiLevelSender,
)
from repro.protocols.packets import CdmPacket
from repro.timesync.intervals import TwoLevelSchedule
from repro.timesync.sync import LooseTimeSync
from tests.protocols.test_multilevel import make_params, run_flat_intervals

SEED = b"eftp-seed"
LOW_PER_HIGH = 4


@pytest.fixture
def two_level():
    return TwoLevelSchedule(0.0, 1.0, LOW_PER_HIGH)


def build(protocol: str, two_level):
    base = make_params()
    if protocol == "eftp":
        params = eftp_params(base)
        sender = EftpSender(SEED, params)
        receiver = EftpReceiver(
            sender.chain.high_chain.commitment,
            two_level,
            LooseTimeSync(0.01),
            params,
            cdm_buffers=4,
            rng=random.Random(3),
        )
    else:
        params = base
        sender = MultiLevelSender(SEED, params)
        receiver = MultiLevelReceiver(
            sender.chain.high_chain.commitment,
            two_level,
            LooseTimeSync(0.01),
            params,
            cdm_buffers=4,
            rng=random.Random(3),
        )
    receiver.bootstrap_commitment(1, sender.chain.low_commitment(1))
    return sender, receiver


class TestEftpConfiguration:
    def test_params_helper_sets_wiring(self):
        assert eftp_params(make_params()).eftp_wiring

    def test_sender_requires_wiring(self):
        with pytest.raises(ConfigurationError):
            EftpSender(SEED, make_params())

    def test_receiver_requires_wiring(self, two_level):
        sender = EftpSender(SEED, eftp_params(make_params()))
        with pytest.raises(ConfigurationError):
            EftpReceiver(
                sender.chain.high_chain.commitment,
                two_level,
                LooseTimeSync(0.01),
                make_params(),
            )


class TestEftpBehaviour:
    def test_loss_free_run_equivalent_to_original(self, two_level):
        sender, receiver = build("eftp", two_level)
        events = run_flat_intervals(sender, receiver, 24)
        authenticated = [e for e in events if e.outcome.value == "authenticated"]
        assert len(authenticated) == 22
        assert receiver.stats.forged_accepted == 0

    def test_recovery_one_high_interval_sooner(self, two_level):
        """The paper's §III-A claim, measured: with every CDM_2 copy lost,
        EFTP recovers chain 3's commitment one high interval before the
        original wiring."""

        def drop_cdm2(packet, _flat):
            return not (isinstance(packet, CdmPacket) and packet.high_index == 2)

        latencies = {}
        for protocol in ("original", "eftp"):
            sender, receiver = build(protocol, two_level)
            run_flat_intervals(sender, receiver, 28, drop_cdm2)
            latencies[protocol] = receiver.commitment_latency_high_intervals(3)
        assert latencies["eftp"] is not None
        assert latencies["original"] is not None
        saved = latencies["original"] - latencies["eftp"]
        assert saved == pytest.approx(1.0, abs=0.3)

    def test_recovery_still_correct(self, two_level):
        sender, receiver = build("eftp", two_level)

        def drop_cdm2(packet, _flat):
            return not (isinstance(packet, CdmPacket) and packet.high_index == 2)

        run_flat_intervals(sender, receiver, 24, drop_cdm2)
        assert receiver.known_commitments[3] == sender.chain.low_commitment(3)
