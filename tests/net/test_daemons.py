"""Broadcaster and receiver daemons over the loopback transport."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.daemons import Broadcaster, ReceiverDaemon
from repro.net.flood import ProvenanceRegistry
from repro.net.transport import LoopbackNetwork
from repro.protocols.dap import DapReceiver, DapSender
from repro.protocols.packets import FORGED
from repro.protocols.wire import encode_packet
from repro.sim.attacker import announce_forgery_factory
from repro.sim.metrics import NodeSummary


@pytest.fixture
def network():
    return LoopbackNetwork()


def make_pair(condition, intervals=6, copies=3):
    sender = DapSender(
        seed=b"net-test",
        chain_length=intervals + 1,
        disclosure_delay=1,
        announce_copies=copies,
    )
    receiver = DapReceiver(
        commitment=sender.chain.commitment,
        condition=condition,
        local_key=b"net-local",
        buffers=4,
    )
    return sender, receiver


class TestBroadcaster:
    def test_transmits_every_interval_at_sender_offsets(
        self, network, condition, schedule
    ):
        sender, receiver = make_pair(condition)
        daemon = ReceiverDaemon("r", network.endpoint("r"), receiver)
        broadcaster = Broadcaster(
            network.endpoint("s"), ["r"], sender, schedule, 6
        )
        broadcaster.start()
        network.run()
        # announce copies for 6 intervals + reveals for intervals 1..5
        assert broadcaster.packets_sent == 6 * 3 + 5
        assert daemon.datagrams_received == broadcaster.packets_sent

    def test_authenticates_over_the_wire(self, network, condition, schedule):
        sender, receiver = make_pair(condition)
        daemon = ReceiverDaemon("r", network.endpoint("r"), receiver)
        Broadcaster(network.endpoint("s"), ["r"], sender, schedule, 6).start()
        network.run()
        summary = daemon.node_summary()
        # intervals - disclosure_delay verifiable messages, none attacked
        assert summary.authenticated == 5
        assert summary.forged_accepted == 0

    def test_rejects_empty_destinations(self, network, condition, schedule):
        sender, _ = make_pair(condition)
        with pytest.raises(ConfigurationError):
            Broadcaster(network.endpoint("s"), [], sender, schedule, 6)

    def test_rejects_nonpositive_intervals(self, network, condition, schedule):
        sender, _ = make_pair(condition)
        with pytest.raises(ConfigurationError):
            Broadcaster(network.endpoint("s"), ["r"], sender, schedule, 0)


class TestReceiverDaemon:
    def test_malformed_datagrams_counted_not_fatal(
        self, network, condition, schedule
    ):
        sender, receiver = make_pair(condition)
        daemon = ReceiverDaemon("r", network.endpoint("r"), receiver)
        ep = network.endpoint("x")
        ep.send(b"\xff garbage", "r")
        network.run()
        assert daemon.malformed == 1
        assert daemon.node_summary().packets_received == 0
        # daemon still works afterwards
        Broadcaster(network.endpoint("s"), ["r"], sender, schedule, 6).start()
        network.run()
        assert daemon.node_summary().authenticated == 5

    def test_registry_restores_forged_provenance(self, network, condition, rng):
        _, receiver = make_pair(condition)
        registry = ProvenanceRegistry()
        daemon = ReceiverDaemon("r", network.endpoint("r"), receiver, registry)
        forged = announce_forgery_factory()(1, 0, rng)
        datagram = encode_packet(forged)
        registry.register(datagram, FORGED)
        network.endpoint("x").send(datagram, "r", delay=0.1)
        network.run()
        summary = daemon.node_summary()
        assert summary.packets_received == 1
        assert summary.forged_accepted == 0

    def test_latency_samples_recorded(self, network, condition, schedule):
        sender, receiver = make_pair(condition)
        daemon = ReceiverDaemon("r", network.endpoint("r"), receiver)
        Broadcaster(network.endpoint("s"), ["r"], sender, schedule, 6).start()
        network.run()
        assert len(daemon.latencies) == daemon.datagrams_received
        assert all(latency >= 0.0 for latency in daemon.latencies)

    def test_node_summary_type_and_name(self, network, condition):
        _, receiver = make_pair(condition)
        daemon = ReceiverDaemon("node-7", network.endpoint("r"), receiver)
        summary = daemon.node_summary()
        assert isinstance(summary, NodeSummary)
        assert summary.name == "node-7"

    def test_clock_offset_shifts_local_time(self, network, condition):
        _, receiver = make_pair(condition)
        daemon = ReceiverDaemon(
            "r", network.endpoint("r"), receiver, clock_offset=0.5
        )
        assert daemon.local_time == pytest.approx(0.5)
