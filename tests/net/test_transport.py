"""Loopback transport semantics: delivery, ordering, accounting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.transport import MAX_DATAGRAM_BYTES, LoopbackNetwork


@pytest.fixture
def network():
    return LoopbackNetwork()


class TestEndpoints:
    def test_addresses_register_in_order(self, network):
        network.endpoint("a")
        network.endpoint("b")
        assert network.addresses == ["a", "b"]

    def test_duplicate_address_rejected(self, network):
        network.endpoint("a")
        with pytest.raises(ConfigurationError):
            network.endpoint("a")

    def test_empty_address_rejected(self, network):
        with pytest.raises(ConfigurationError):
            network.endpoint("")


class TestDelivery:
    def test_datagram_reaches_handler_with_arrival_time(self, network):
        a = network.endpoint("a")
        b = network.endpoint("b")
        seen = []
        b.set_handler(lambda data, at: seen.append((data, at)))
        a.send(b"hello", "b", delay=0.25)
        network.run()
        assert seen == [(b"hello", 0.25)]
        assert network.datagrams_delivered == 1

    def test_unknown_address_drops_silently_but_counts(self, network):
        a = network.endpoint("a")
        a.send(b"x", "nowhere")
        network.run()
        assert network.datagrams_undeliverable == 1
        assert network.datagrams_delivered == 0

    def test_payload_snapshot_taken_at_send(self, network):
        a = network.endpoint("a")
        b = network.endpoint("b")
        seen = []
        b.set_handler(lambda data, at: seen.append(data))
        payload = bytearray(b"mutable")
        a.send(payload, "b")
        payload[0] = 0
        network.run()
        assert seen == [b"mutable"]

    def test_equal_time_sends_deliver_fifo(self, network):
        a = network.endpoint("a")
        b = network.endpoint("b")
        seen = []
        b.set_handler(lambda data, at: seen.append(data))
        for i in range(5):
            a.send(bytes([i]), "b", delay=1.0)
        network.run()
        assert seen == [bytes([i]) for i in range(5)]

    def test_negative_delay_rejected(self, network):
        a = network.endpoint("a")
        network.endpoint("b")
        with pytest.raises(ConfigurationError):
            a.send(b"x", "b", delay=-0.1)


class TestAccounting:
    def test_send_counters(self, network):
        a = network.endpoint("a")
        network.endpoint("b")
        a.send(b"xyz", "b")
        a.send(b"pq", "b")
        assert a.datagrams_sent == 2
        assert a.bytes_sent == 5

    def test_oversized_datagram_rejected(self, network):
        a = network.endpoint("a")
        network.endpoint("b")
        with pytest.raises(ConfigurationError):
            a.send(b"z" * (MAX_DATAGRAM_BYTES + 1), "b")

    def test_single_handler_enforced(self, network):
        a = network.endpoint("a")
        a.set_handler(lambda data, at: None)
        with pytest.raises(ConfigurationError):
            a.set_handler(lambda data, at: None)


class TestTimers:
    def test_call_at_fires_at_virtual_time(self, network):
        a = network.endpoint("a")
        fired = []
        a.call_at(2.0, lambda: fired.append(a.now()))
        network.run(until=1.0)
        assert fired == []
        network.run()
        assert fired == [2.0]

    def test_call_at_in_the_past_rejected(self, network):
        a = network.endpoint("a")
        network.endpoint("b")
        a.send(b"x", "b", delay=1.0)
        network.run()
        with pytest.raises(SimulationError):
            a.call_at(0.5, lambda: None)
