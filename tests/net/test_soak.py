"""The testbed's acceptance tests: loopback soak versus the simulator.

The live testbed is only trustworthy if running the protocols over a
wire does not change what they do. These tests pin that down hard: at
the same seed, a loopback soak must reproduce :func:`run_scenario`
*decision for decision* — identical per-node tallies, not just close
rates — and the paper's defence story must survive the trip onto the
wire (m-buffers hold the flood off; a bufferless receiver degrades).
"""

from __future__ import annotations

import pytest

from repro.net import LoadTestConfig, run_loadtest, run_loopback_soak
from repro.sim.scenario import ScenarioConfig, run_scenario

FLOOD = dict(
    protocol="dap",
    intervals=24,
    interval_duration=0.5,
    receivers=3,
    attack_fraction=0.6,
    announce_copies=5,
    seed=11,
)


class TestSimulationParity:
    @pytest.mark.parametrize("protocol", ["dap", "tesla_pp"])
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_soak_reproduces_simulation_node_for_node(self, protocol, seed):
        config = ScenarioConfig(
            protocol=protocol,
            intervals=16,
            interval_duration=0.5,
            receivers=3,
            buffers=4,
            attack_fraction=0.5,
            loss_probability=0.1,
            announce_copies=5,
            seed=seed,
        )
        sim = run_scenario(config)
        net = run_loopback_soak(config)
        assert net.fleet.nodes == sim.fleet.nodes
        assert net.authentication_rate == sim.authentication_rate
        assert net.sent_authentic == sim.sent_authentic

    def test_parity_holds_under_bursty_loss(self):
        config = ScenarioConfig(
            protocol="dap",
            intervals=14,
            interval_duration=0.5,
            receivers=2,
            attack_fraction=0.4,
            loss_probability=0.2,
            loss_mean_burst=3.0,
            seed=5,
        )
        assert run_loopback_soak(config).fleet.nodes == run_scenario(config).fleet.nodes

    def test_parity_holds_without_attacker(self):
        config = ScenarioConfig(
            protocol="dap",
            intervals=12,
            interval_duration=0.5,
            receivers=2,
            loss_probability=0.15,
            seed=9,
        )
        net = run_loopback_soak(config)
        assert net.fleet.nodes == run_scenario(config).fleet.nodes
        assert net.packets_injected == 0


class TestFloodDefence:
    def test_m_buffers_hold_the_flood_off(self):
        result = run_loopback_soak(ScenarioConfig(buffers=4, **FLOOD))
        assert result.fleet.total_forged_accepted == 0
        assert result.packets_injected > 0
        # with m=4 reservoir slots the survival probability 1 - p^m is
        # high: the flood barely dents the authentication rate
        assert result.authentication_rate > 0.85

    def test_bufferless_receiver_measurably_degrades(self):
        buffered = run_loopback_soak(ScenarioConfig(buffers=4, **FLOOD))
        bufferless = run_loopback_soak(ScenarioConfig(buffers=1, **FLOOD))
        # security invariant holds either way...
        assert bufferless.fleet.total_forged_accepted == 0
        # ...but without the reservoir the flood wins real ground
        assert (
            bufferless.authentication_rate
            < buffered.authentication_rate - 0.2
        )
        assert bufferless.attack_success_rate > buffered.attack_success_rate


class TestLoadtestAcceptance:
    def test_loopback_loadtest_report_is_complete(self):
        report = run_loadtest(
            LoadTestConfig(
                transport="loopback",
                receivers=4,
                shards=2,
                intervals=20,
                interval_duration=0.1,
                attack_fraction=0.5,
                loss_probability=0.05,
                seed=9,
            )
        )
        data = report.to_dict()
        assert data["packets_per_second"] > 0
        assert data["latency_p50_us"] > 0
        assert data["latency_p99_us"] >= data["latency_p50_us"]
        assert data["forged_accepted"] == 0
        assert data["packets_injected"] > 0
        assert data["authentication_rate"] > 0
