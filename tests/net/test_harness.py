"""Load harness: config validation, sharding, merging, the engine path."""

from __future__ import annotations

import json

import pytest

from repro.engine import ParallelExecutor, SerialExecutor
from repro.errors import ConfigurationError
from repro.net.harness import (
    LOADTEST_SCHEMA_VERSION,
    LoadTestConfig,
    LoadTestReport,
    derive_soak_world,
    merge_soaks,
    percentile,
    run_loadtest,
    run_loopback_soak,
    shard_sizes,
)
from repro.sim.scenario import ScenarioConfig


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 50.0) == 3.0
        assert percentile(samples, 99.0) == 5.0
        assert percentile(samples, 100.0) == 5.0

    def test_rejects_bad_q(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101.0)
        with pytest.raises(ConfigurationError):
            percentile([1.0], -1.0)


class TestLoadTestConfig:
    def test_rejects_unknown_transport(self):
        with pytest.raises(ConfigurationError):
            LoadTestConfig(transport="carrier-pigeon")

    def test_rejects_unsupported_protocol(self):
        with pytest.raises(ConfigurationError):
            LoadTestConfig(protocol="tesla")

    def test_rejects_more_shards_than_receivers(self):
        with pytest.raises(ConfigurationError):
            LoadTestConfig(receivers=2, shards=3)

    def test_rejects_udp_multi_shard(self):
        with pytest.raises(ConfigurationError):
            LoadTestConfig(transport="udp", shards=2, receivers=4)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            LoadTestConfig(attack_rate=-1.0)

    def test_shards_partition_receivers_with_distinct_seeds(self):
        config = LoadTestConfig(receivers=7, shards=3, seed=100)
        scenarios = [config.scenario_for_shard(s) for s in range(3)]
        assert [s.receivers for s in scenarios] == [3, 2, 2]
        assert [s.seed for s in scenarios] == [100, 101, 102]
        assert all(s.protocol == config.protocol for s in scenarios)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            LoadTestConfig(engine="warp")

    def test_vectorized_engine_rejects_udp_rate_and_proxy_faults(self):
        with pytest.raises(ConfigurationError):
            LoadTestConfig(engine="vectorized", transport="udp")
        with pytest.raises(ConfigurationError):
            LoadTestConfig(engine="vectorized", attack_rate=10.0)
        with pytest.raises(ConfigurationError):
            LoadTestConfig(engine="vectorized", jitter=0.01)
        with pytest.raises(ConfigurationError):
            LoadTestConfig(engine="vectorized", duplicate_probability=0.1)
        with pytest.raises(ConfigurationError):
            LoadTestConfig(engine="vectorized", reorder_probability=0.1)

    def test_engine_threads_into_shard_scenarios(self):
        config = LoadTestConfig(receivers=4, shards=2, engine="vectorized")
        assert all(
            config.scenario_for_shard(s).engine == "vectorized"
            for s in range(2)
        )


class TestDeriveSoakWorld:
    def test_rejects_non_two_phase_protocols(self):
        with pytest.raises(ConfigurationError):
            derive_soak_world(ScenarioConfig(protocol="tesla"))

    def test_sent_authentic_formula(self):
        world = derive_soak_world(ScenarioConfig(intervals=10, disclosure_delay=2))
        assert world.sent_authentic == 8
        assert len(world.receivers) == 5


class TestRunLoadtest:
    CONFIG = LoadTestConfig(
        receivers=4,
        shards=2,
        intervals=16,
        interval_duration=0.1,
        attack_fraction=0.5,
        loss_probability=0.1,
        seed=21,
    )

    def test_report_has_throughput_and_latency(self):
        report = run_loadtest(self.CONFIG)
        assert report.packets_per_second > 0
        assert report.latency_p99_us >= report.latency_p50_us > 0
        assert report.latency_samples > 0
        assert report.forged_accepted == 0
        assert report.shards == 2
        assert report.receivers == 4

    def test_report_roundtrips_through_json(self):
        report = run_loadtest(self.CONFIG)
        decoded = json.loads(report.to_json())
        assert decoded == report.to_dict()
        assert decoded["transport"] == "loopback"
        assert decoded["sent_authentic"] == report.sent_authentic

    def test_serial_and_parallel_agree_on_outcomes(self):
        serial = run_loadtest(self.CONFIG, executor=SerialExecutor())
        parallel = run_loadtest(self.CONFIG, executor=ParallelExecutor(jobs=2))
        # timing fields differ; every outcome field must not
        assert serial.authentication_rate == parallel.authentication_rate
        assert serial.forged_accepted == parallel.forged_accepted
        assert serial.datagrams_delivered == parallel.datagrams_delivered
        assert serial.datagrams_dropped == parallel.datagrams_dropped
        assert serial.packets_injected == parallel.packets_injected

    def test_merge_requires_results(self):
        with pytest.raises(ConfigurationError):
            merge_soaks(self.CONFIG, [])

    def test_faulty_proxy_knobs_reach_the_soak(self):
        config = LoadTestConfig(
            receivers=2,
            intervals=12,
            interval_duration=0.1,
            duplicate_probability=1.0,
            seed=3,
        )
        report = run_loadtest(config)
        assert report.datagrams_duplicated > 0

    def test_rate_flood_overrides_fraction(self):
        config = LoadTestConfig(
            receivers=2,
            intervals=12,
            interval_duration=0.5,
            attack_rate=40.0,
            seed=3,
        )
        report = run_loadtest(config)
        assert report.packets_injected == int(40.0 * 12 * 0.5)
        assert report.forged_accepted == 0

    def test_vectorized_engine_predicts_soak_tallies(self):
        import dataclasses

        base = LoadTestConfig(
            receivers=4,
            shards=2,
            intervals=15,
            interval_duration=0.1,
            attack_fraction=0.5,
            loss_probability=0.1,
            seed=7,
        )
        des = run_loadtest(base)
        vectorized = run_loadtest(dataclasses.replace(base, engine="vectorized"))
        assert vectorized.authentication_rate == des.authentication_rate
        assert vectorized.attack_success_rate == des.attack_success_rate
        assert vectorized.forged_accepted == des.forged_accepted
        assert vectorized.peak_buffer_bits == des.peak_buffer_bits
        assert vectorized.sent_authentic == des.sent_authentic
        # Transport artifacts have no in-memory equivalent.
        assert vectorized.datagrams_delivered == 0
        assert vectorized.latency_samples == 0


class TestSoakResultProperties:
    def test_rates_come_from_fleet(self):
        result = run_loopback_soak(
            ScenarioConfig(intervals=8, interval_duration=0.2, receivers=2, seed=5)
        )
        assert result.authentication_rate == result.fleet.mean_authentication_rate
        assert result.attack_success_rate == result.fleet.mean_attack_success_rate
        assert result.simulated_seconds > 0


class TestShardSizes:
    def test_round_robin_balances(self):
        assert shard_sizes(10, 4) == [3, 3, 2, 2]
        assert shard_sizes(7, 3) == [3, 2, 2]
        assert shard_sizes(4, 4) == [1, 1, 1, 1]
        assert shard_sizes(5, 1) == [5]

    def test_partition_property(self):
        """Sizes always sum to the population and never differ by more
        than one — no shard is starved however uneven the division."""
        for receivers in range(1, 40):
            for shards in range(1, receivers + 1):
                sizes = shard_sizes(receivers, shards)
                assert sum(sizes) == receivers
                assert max(sizes) - min(sizes) <= 1
                assert sizes == sorted(sizes, reverse=True)

    def test_matches_scenario_for_shard(self):
        config = LoadTestConfig(receivers=7, shards=3)
        assert [
            config.scenario_for_shard(s).receivers for s in range(3)
        ] == shard_sizes(7, 3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            shard_sizes(5, 0)
        with pytest.raises(ConfigurationError):
            shard_sizes(2, 3)


class TestReportSchema:
    REPORT = LoadTestReport(
        transport="loopback",
        protocol="dap",
        receivers=4,
        shards=2,
        intervals=16,
        sent_authentic=14,
        authentication_rate=1.0,
        attack_success_rate=0.0,
        forged_accepted=0,
        peak_buffer_bits=1024,
        packets_sent=56,
        packets_injected=0,
        datagrams_delivered=56,
        datagrams_dropped=0,
        datagrams_duplicated=0,
        datagrams_reordered=0,
        malformed=0,
        packets_per_second=100.0,
        latency_p50_us=10.0,
        latency_p99_us=20.0,
        latency_samples=56,
        simulated_seconds=1.6,
        wall_seconds=0.5,
    )

    def test_to_dict_carries_schema_version(self):
        data = self.REPORT.to_dict()
        assert data["schema_version"] == LOADTEST_SCHEMA_VERSION == 1

    def test_round_trip_through_json(self):
        data = json.loads(self.REPORT.to_json())
        assert LoadTestReport.from_dict(data) == self.REPORT

    def test_from_dict_ignores_unknown_keys(self):
        """Forward compatibility: a report written by a newer schema
        (extra fields, bumped version) still loads."""
        data = self.REPORT.to_dict()
        data["schema_version"] = 99
        data["a_future_field"] = "ignored"
        assert LoadTestReport.from_dict(data) == self.REPORT

    def test_from_dict_names_missing_fields(self):
        data = self.REPORT.to_dict()
        del data["peak_buffer_bits"]
        with pytest.raises(ConfigurationError, match="peak_buffer_bits"):
            LoadTestReport.from_dict(data)
