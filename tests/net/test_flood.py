"""Flood attacker and the ground-truth provenance registry."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.flood import FloodAttacker, ProvenanceRegistry
from repro.net.transport import LoopbackNetwork
from repro.protocols.packets import FORGED, LEGITIMATE
from repro.protocols.wire import decode_packet
from repro.sim.attacker import forged_copies_for_fraction


@pytest.fixture
def network():
    return LoopbackNetwork()


class TestProvenanceRegistry:
    def test_registered_bytes_come_back_forged(self):
        registry = ProvenanceRegistry()
        registry.register(b"datagram-bytes")
        assert registry.provenance_of(b"datagram-bytes") == FORGED
        assert len(registry) == 1

    def test_unknown_bytes_default_to_legitimate(self):
        assert ProvenanceRegistry().provenance_of(b"never-seen") == LEGITIMATE

    def test_mutable_input_snapshotted(self):
        registry = ProvenanceRegistry()
        data = bytearray(b"abc")
        registry.register(data)
        data[0] = 0
        assert registry.provenance_of(b"abc") == FORGED


class TestFloodAttacker:
    def test_needs_targets(self, network):
        with pytest.raises(ConfigurationError):
            FloodAttacker(network.endpoint("a"), [])

    def test_burst_flood_matches_sim_copy_count(self, network, schedule):
        inbox = []
        network.endpoint("victim").set_handler(
            lambda data, at: inbox.append((data, at))
        )
        registry = ProvenanceRegistry()
        attacker = FloodAttacker(
            network.endpoint("a"),
            ["victim"],
            registry=registry,
            rng=random.Random(3),
        )
        attacker.schedule_bursts(
            schedule, p=0.5, authentic_copies_per_interval=5, intervals=4
        )
        network.run()
        expected = 4 * forged_copies_for_fraction(5, 0.5)
        assert attacker.packets_injected == expected
        assert len(inbox) == expected
        # every injected datagram is decodable and registered as forged
        for data, _at in inbox:
            decode_packet(data)
            assert registry.provenance_of(data) == FORGED

    def test_bursts_land_in_leading_fraction(self, network, schedule):
        arrivals = []
        network.endpoint("victim").set_handler(
            lambda data, at: arrivals.append(at)
        )
        attacker = FloodAttacker(
            network.endpoint("a"), ["victim"], rng=random.Random(3)
        )
        attacker.schedule_bursts(
            schedule,
            p=0.5,
            authentic_copies_per_interval=5,
            intervals=3,
            burst_fraction=0.25,
        )
        network.run()
        for at in arrivals:
            interval_start = float(int(at))
            assert at - interval_start <= 0.25

    def test_rate_flood_injects_rate_times_duration(self, network, schedule):
        inbox = []
        network.endpoint("victim").set_handler(
            lambda data, at: inbox.append(at)
        )
        attacker = FloodAttacker(
            network.endpoint("a"), ["victim"], rng=random.Random(3)
        )
        attacker.schedule_rate(rate=50.0, duration=2.0, schedule=schedule)
        network.run()
        assert attacker.packets_injected == 100
        assert len(inbox) == 100
        assert max(inbox) < 2.0

    def test_rate_flood_validates_inputs(self, network, schedule):
        attacker = FloodAttacker(network.endpoint("a"), ["victim"])
        with pytest.raises(ConfigurationError):
            attacker.schedule_rate(rate=0.0, duration=1.0, schedule=schedule)
        with pytest.raises(ConfigurationError):
            attacker.schedule_rate(rate=10.0, duration=0.0, schedule=schedule)

    def test_burst_flood_validates_inputs(self, network, schedule):
        attacker = FloodAttacker(network.endpoint("a"), ["victim"])
        with pytest.raises(ConfigurationError):
            attacker.schedule_bursts(schedule, 0.5, 5, intervals=0)
        with pytest.raises(ConfigurationError):
            attacker.schedule_bursts(schedule, 0.5, 5, 3, burst_fraction=0.0)
