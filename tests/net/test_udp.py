"""Real-socket tests: asyncio UDP transport, soak, serve and attack.

Every event loop here runs under an explicit guard (``asyncio.wait_for``
in the library, wall-clock bounded soaks in the tests), so a wedged
loop fails fast instead of hanging the suite.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.net.harness import LoadTestConfig
from repro.net.transport import UdpTransport, _parse_addr
from repro.net.udp import run_udp_attack, run_udp_serve, run_udp_soak

#: Hard ceiling for any single event loop in this module.
GUARD_SECONDS = 20.0


def run_guarded(coro):
    async def guarded():
        return await asyncio.wait_for(coro, timeout=GUARD_SECONDS)

    return asyncio.run(guarded())


class TestParseAddr:
    def test_host_port(self):
        assert _parse_addr("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_rejects_portless(self):
        with pytest.raises(ConfigurationError):
            _parse_addr("localhost")

    def test_rejects_bad_port(self):
        with pytest.raises(ConfigurationError):
            _parse_addr("localhost:http")


class TestUdpTransport:
    def test_roundtrip_between_two_sockets(self):
        async def world():
            loop = asyncio.get_running_loop()
            epoch = loop.time()
            a = await UdpTransport.create(epoch=epoch)
            b = await UdpTransport.create(epoch=epoch)
            received = asyncio.Event()
            seen = []

            def on_datagram(data, at):
                seen.append((data, at))
                received.set()

            b.set_handler(on_datagram)
            try:
                a.send(b"over the wire", b.address)
                await asyncio.wait_for(received.wait(), timeout=5.0)
            finally:
                a.close()
                b.close()
            return seen

        seen = run_guarded(world())
        assert seen[0][0] == b"over the wire"
        assert seen[0][1] >= 0.0

    def test_delayed_send_arrives_later(self):
        async def world():
            loop = asyncio.get_running_loop()
            epoch = loop.time()
            a = await UdpTransport.create(epoch=epoch)
            b = await UdpTransport.create(epoch=epoch)
            received = asyncio.Event()
            arrivals = []

            def on_datagram(data, at):
                arrivals.append(at)
                received.set()

            b.set_handler(on_datagram)
            try:
                sent_at = a.now()
                a.send(b"later", b.address, delay=0.2)
                await asyncio.wait_for(received.wait(), timeout=5.0)
            finally:
                a.close()
                b.close()
            return sent_at, arrivals[0]

        sent_at, arrived_at = run_guarded(world())
        assert arrived_at - sent_at >= 0.15


class TestUdpSoak:
    def test_small_soak_authenticates_over_real_sockets(self):
        report = run_udp_soak(
            LoadTestConfig(
                transport="udp",
                receivers=2,
                intervals=6,
                interval_duration=0.15,
                seed=2,
            )
        )
        assert report.fleet.total_forged_accepted == 0
        assert report.fleet.total_authenticated > 0
        assert report.datagrams_delivered > 0
        assert report.wall_seconds < GUARD_SECONDS

    def test_soak_under_rate_flood_rejects_forgeries(self):
        report = run_udp_soak(
            LoadTestConfig(
                transport="udp",
                receivers=2,
                intervals=6,
                interval_duration=0.15,
                attack_rate=100.0,
                seed=2,
            )
        )
        assert report.packets_injected > 0
        assert report.fleet.total_forged_accepted == 0

    def test_rejects_loopback_config(self):
        with pytest.raises(ConfigurationError):
            run_udp_soak(LoadTestConfig(transport="loopback"))


class TestServeAndAttack:
    def test_serve_validates_port_range(self):
        config = LoadTestConfig(transport="udp", receivers=4)
        with pytest.raises(ConfigurationError):
            run_udp_serve(config, 65534)
        with pytest.raises(ConfigurationError):
            run_udp_serve(config, 0)

    def test_attack_injects_at_rate(self):
        # flood an unbound localhost port: counting injections needs no
        # listener, and closed ports drop datagrams silently
        injected = run_udp_attack(
            "127.0.0.1", 45999, rate=100.0, duration=0.5, interval_duration=0.5
        )
        assert injected == 50
