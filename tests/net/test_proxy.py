"""Fault-injection proxy: loss, delay, duplication, reordering."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.proxy import FaultInjectionProxy, ProxyConfig
from repro.net.transport import LoopbackNetwork
from repro.sim.channel import BernoulliLoss, GilbertElliottLoss


@pytest.fixture
def network():
    return LoopbackNetwork()


def wire_proxy(network, config, downstream=("r0", "r1"), seed=1):
    inboxes = {}
    for name in downstream:
        inbox = []
        network.endpoint(name).set_handler(
            lambda data, at, inbox=inbox: inbox.append((data, at))
        )
        inboxes[name] = inbox
    proxy = FaultInjectionProxy(
        network.endpoint("proxy"),
        list(downstream),
        config,
        rng=random.Random(seed),
    )
    source = network.endpoint("src")
    return proxy, source, inboxes


class TestProxyConfig:
    def test_rejects_out_of_range_probabilities(self):
        for field in (
            "loss_probability",
            "duplicate_probability",
            "reorder_probability",
        ):
            with pytest.raises(ConfigurationError):
                ProxyConfig(**{field: 1.5})
            with pytest.raises(ConfigurationError):
                ProxyConfig(**{field: -0.1})

    def test_rejects_negative_delays(self):
        with pytest.raises(ConfigurationError):
            ProxyConfig(delay=-1.0)
        with pytest.raises(ConfigurationError):
            ProxyConfig(jitter=-0.5)
        with pytest.raises(ConfigurationError):
            ProxyConfig(reorder_delay=-0.1)

    def test_loss_process_selection(self):
        assert isinstance(
            ProxyConfig(loss_probability=0.2).make_loss_process(), BernoulliLoss
        )
        assert isinstance(
            ProxyConfig(
                loss_probability=0.2, loss_mean_burst=4.0
            ).make_loss_process(),
            GilbertElliottLoss,
        )

    def test_reorder_delay_defaults_to_twice_base(self):
        assert ProxyConfig(delay=0.01).effective_reorder_delay == pytest.approx(0.02)
        assert ProxyConfig(
            delay=0.01, reorder_delay=0.1
        ).effective_reorder_delay == pytest.approx(0.1)


class TestForwarding:
    def test_fans_out_to_every_downstream_with_delay(self, network):
        proxy, source, inboxes = wire_proxy(network, ProxyConfig(delay=0.01))
        source.send(b"payload", "proxy")
        network.run()
        for inbox in inboxes.values():
            assert inbox == [(b"payload", pytest.approx(0.01))]
        assert proxy.forwarded == 2
        assert proxy.dropped == 0

    def test_needs_downstream(self, network):
        with pytest.raises(ConfigurationError):
            FaultInjectionProxy(network.endpoint("proxy"), [])

    def test_total_loss_drops_everything(self, network):
        proxy, source, inboxes = wire_proxy(
            network, ProxyConfig(loss_probability=1.0)
        )
        for _ in range(10):
            source.send(b"x", "proxy")
        network.run()
        assert all(not inbox for inbox in inboxes.values())
        assert proxy.dropped == 20
        assert proxy.forwarded == 0

    def test_duplication_delivers_two_copies(self, network):
        proxy, source, inboxes = wire_proxy(
            network, ProxyConfig(duplicate_probability=1.0)
        )
        source.send(b"x", "proxy")
        network.run()
        for inbox in inboxes.values():
            assert len(inbox) == 2
        assert proxy.duplicated == 2

    def test_reordering_lets_later_datagrams_overtake(self, network):
        # Draw order per datagram: loss, then reorder. Script the RNG so
        # the first datagram is held back and the second is not.
        inbox = []
        network.endpoint("r0").set_handler(lambda data, at: inbox.append(data))

        class Scripted(random.Random):
            def __init__(self, values):
                super().__init__(0)
                self.values = list(values)

            def random(self):
                return self.values.pop(0)

        proxy = FaultInjectionProxy(
            network.endpoint("proxy"),
            ["r0"],
            ProxyConfig(delay=0.01, reorder_delay=0.05, reorder_probability=0.5),
            # loss(first), reorder(first)=hold, loss(second), reorder(second)
            rng=Scripted([0.9, 0.0, 0.9, 0.9]),
        )
        source = network.endpoint("src")
        source.send(b"first", "proxy")
        source.send(b"second", "proxy", delay=0.001)
        network.run()
        assert inbox == [b"second", b"first"]
        assert proxy.reordered == 1

    def test_zero_knobs_draw_once_per_link_per_datagram(self, network):
        # Parity with BroadcastMedium: a plain-delay proxy consumes
        # exactly one RNG decision per link per datagram.
        class CountingRandom(random.Random):
            def __init__(self):
                super().__init__(0)
                self.calls = 0

            def random(self):
                self.calls += 1
                return super().random()

        rng = CountingRandom()
        inboxes = {}
        for name in ("r0", "r1", "r2"):
            network.endpoint(name).set_handler(lambda data, at: None)
        proxy = FaultInjectionProxy(
            network.endpoint("proxy"),
            ["r0", "r1", "r2"],
            ProxyConfig(loss_probability=0.3, delay=0.01),
            rng=rng,
        )
        source = network.endpoint("src")
        for _ in range(7):
            source.send(b"x", "proxy")
        network.run()
        assert rng.calls == 7 * 3
