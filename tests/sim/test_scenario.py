"""Unit tests for the scenario runner (integration smoke lives in
tests/integration)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.scenario import ScenarioConfig, run_scenario


class TestScenarioConfig:
    def test_defaults_valid(self):
        assert ScenarioConfig().protocol == "dap"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(protocol="quic")

    def test_bad_numbers_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(intervals=2)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(receivers=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(buffers=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(attack_fraction=1.0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(disclosure_delay=0)


class TestRunScenario:
    def test_deterministic_given_seed(self):
        config = ScenarioConfig(
            protocol="dap", intervals=20, attack_fraction=0.6, seed=42
        )
        a = run_scenario(config)
        b = run_scenario(config)
        assert a.authentication_rate == b.authentication_rate
        assert a.forged_bandwidth_fraction == b.forged_bandwidth_fraction

    def test_seed_changes_outcome_under_attack(self):
        base = dict(protocol="dap", intervals=20, attack_fraction=0.7, buffers=2)
        a = run_scenario(ScenarioConfig(seed=1, **base))
        b = run_scenario(ScenarioConfig(seed=2, **base))
        # The reservoir's random choices differ; rates rarely coincide.
        assert (
            a.fleet.nodes[0].authenticated != b.fleet.nodes[0].authenticated
            or a.fleet.nodes[1].authenticated != b.fleet.nodes[1].authenticated
        )

    def test_clean_channel_full_authentication(self):
        result = run_scenario(ScenarioConfig(protocol="dap", intervals=15))
        assert result.authentication_rate == 1.0

    def test_measured_forged_fraction_tracks_config(self):
        result = run_scenario(
            ScenarioConfig(protocol="dap", intervals=20, attack_fraction=0.8)
        )
        assert result.forged_bandwidth_fraction > 0.5

    def test_attack_plus_auth_rates_sum_to_one_loss_free(self):
        result = run_scenario(
            ScenarioConfig(protocol="dap", intervals=20, attack_fraction=0.7)
        )
        assert result.authentication_rate + result.attack_success_rate == pytest.approx(
            1.0, abs=0.02
        )

    def test_simulated_time_covers_horizon(self):
        result = run_scenario(ScenarioConfig(protocol="dap", intervals=10))
        assert result.simulated_seconds >= 10.0

    def test_nodes_exposed_for_inspection(self):
        result = run_scenario(ScenarioConfig(protocol="dap", intervals=10, receivers=3))
        assert len(result.nodes) == 3

    def test_bursty_loss_configuration(self):
        result = run_scenario(
            ScenarioConfig(
                protocol="dap",
                intervals=30,
                loss_probability=0.3,
                loss_mean_burst=6.0,
            )
        )
        assert 0.0 < result.authentication_rate < 1.0
        assert result.fleet.total_forged_accepted == 0

    def test_bursty_harsher_than_memoryless_for_multilevel(self):
        """Same average loss, correlated fades: redundancy groups die
        together, so the multi-level family authenticates less."""
        rates = {}
        for label, burst in (("memoryless", None), ("bursty", 10.0)):
            rate = 0.0
            for seed in (1, 2, 3, 4):
                result = run_scenario(
                    ScenarioConfig(
                        protocol="multilevel",
                        intervals=40,
                        receivers=2,
                        loss_probability=0.3,
                        loss_mean_burst=burst,
                        seed=seed,
                    )
                )
                rate += result.authentication_rate / 4
            rates[label] = rate
        assert rates["bursty"] < rates["memoryless"]
