"""Unit tests for fleet metrics aggregation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.metrics import FleetSummary, NodeSummary


def make_node(name="n", authenticated=8, lost=2, forged_accepted=0, peak=100):
    return NodeSummary(
        name=name,
        authenticated=authenticated,
        lost_no_record=lost,
        rejected_forged=3,
        rejected_weak_auth=1,
        discarded_unsafe=0,
        forged_accepted=forged_accepted,
        packets_received=50,
        peak_buffer_bits=peak,
    )


class TestNodeSummary:
    def test_authentication_rate(self):
        assert make_node().authentication_rate(10) == pytest.approx(0.8)

    def test_attack_successes_are_losses(self):
        assert make_node(lost=3).attack_successes == 3

    def test_rate_requires_positive_denominator(self):
        with pytest.raises(ConfigurationError):
            make_node().authentication_rate(0)


class TestFleetSummary:
    @pytest.fixture
    def fleet(self):
        nodes = (
            make_node("a", authenticated=8, lost=2, peak=100),
            make_node("b", authenticated=6, lost=4, peak=300),
        )
        return FleetSummary(nodes=nodes, sent_authentic=10)

    def test_node_count(self, fleet):
        assert fleet.node_count == 2

    def test_totals(self, fleet):
        assert fleet.total_authenticated == 14
        assert fleet.total_forged_accepted == 0

    def test_mean_rates(self, fleet):
        assert fleet.mean_authentication_rate == pytest.approx(0.7)
        assert fleet.mean_attack_success_rate == pytest.approx(0.3)

    def test_peak_buffer_is_max(self, fleet):
        assert fleet.peak_buffer_bits == 300

    def test_empty_fleet(self):
        fleet = FleetSummary(nodes=(), sent_authentic=10)
        assert fleet.mean_authentication_rate == 0.0
        assert fleet.peak_buffer_bits == 0

    def test_forged_acceptance_aggregates(self):
        nodes = (make_node(forged_accepted=1), make_node())
        fleet = FleetSummary(nodes=nodes, sent_authentic=10)
        assert fleet.total_forged_accepted == 1
