"""Tests for the loss processes and their integration with the medium."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols.packets import MacAnnouncePacket
from repro.sim.channel import (
    BernoulliLoss,
    GilbertElliottLoss,
    bernoulli_drop_mask,
    gilbert_elliott_drop_mask,
)
from repro.sim.events import Simulator
from repro.sim.medium import BroadcastMedium, LinkQuality


class TestBernoulliLoss:
    def test_average(self):
        assert BernoulliLoss(0.3).average_loss() == 0.3

    def test_empirical_rate(self):
        loss = BernoulliLoss(0.25)
        rng = random.Random(1)
        drops = sum(loss.should_drop(rng) for _ in range(20_000))
        assert drops / 20_000 == pytest.approx(0.25, abs=0.01)

    def test_zero_and_one(self):
        rng = random.Random(1)
        assert not any(BernoulliLoss(0.0).should_drop(rng) for _ in range(100))
        assert all(BernoulliLoss(1.0).should_drop(rng) for _ in range(100))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.5)


class TestGilbertElliott:
    def test_stationary_share(self):
        channel = GilbertElliottLoss(0.1, 0.4)
        assert channel.stationary_bad_share() == pytest.approx(0.2)

    def test_average_loss_formula(self):
        channel = GilbertElliottLoss(0.1, 0.4, loss_good=0.05, loss_bad=0.9)
        expected = 0.2 * 0.9 + 0.8 * 0.05
        assert channel.average_loss() == pytest.approx(expected)

    def test_from_average_hits_target(self):
        channel = GilbertElliottLoss.from_average(0.2, mean_burst=5.0)
        assert channel.average_loss() == pytest.approx(0.2, abs=1e-9)

    def test_empirical_average_matches(self):
        channel = GilbertElliottLoss.from_average(0.2, mean_burst=5.0)
        rng = random.Random(3)
        drops = sum(channel.should_drop(rng) for _ in range(100_000))
        assert drops / 100_000 == pytest.approx(0.2, abs=0.02)

    def test_losses_are_bursty(self):
        """Consecutive-loss runs are much longer than Bernoulli's at the
        same average loss."""

        def mean_run(process, rng, n=100_000):
            runs, current = [], 0
            for _ in range(n):
                if process.should_drop(rng):
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            return sum(runs) / max(len(runs), 1)

        bursty = mean_run(
            GilbertElliottLoss.from_average(0.2, mean_burst=8.0), random.Random(5)
        )
        memoryless = mean_run(BernoulliLoss(0.2), random.Random(5))
        assert bursty > 3 * memoryless

    def test_fade_state_visible(self):
        channel = GilbertElliottLoss(1.0, 1e-9)
        rng = random.Random(1)
        channel.should_drop(rng)
        assert channel.in_fade

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(1.5, 0.5)
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(0.5, 0.0)
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss.from_average(0.5, mean_burst=0.5)
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss.from_average(
                0.9, mean_burst=3.0, loss_good=0.0, loss_bad=0.5
            )

    @pytest.mark.parametrize("average", [-0.1, 1.0, 1.5, float("nan"), float("inf")])
    def test_from_average_rejects_out_of_range_average(self, average):
        with pytest.raises(ValueError, match="average_loss"):
            GilbertElliottLoss.from_average(average, mean_burst=3.0)

    @pytest.mark.parametrize("burst", [0.0, 0.99, -1.0, float("nan"), float("inf")])
    def test_from_average_rejects_degenerate_burst(self, burst):
        with pytest.raises(ValueError, match="mean_burst"):
            GilbertElliottLoss.from_average(0.3, mean_burst=burst)

    def test_boundary_average_zero_still_allowed(self):
        channel = GilbertElliottLoss.from_average(0.0, mean_burst=3.0)
        assert channel.average_loss() == pytest.approx(0.0)


class TestVectorizedMasks:
    """The array masks must replay the scalar processes draw-for-draw."""

    def test_bernoulli_mask_matches_scalar_sequence(self):
        probability = 0.3
        steps, lanes = 200, 7
        scalar = []
        uniforms = np.empty((steps, lanes))
        for lane in range(lanes):
            process = BernoulliLoss(probability)
            rng = random.Random(1000 + lane)
            mirror = random.Random(1000 + lane)
            scalar.append([process.should_drop(rng) for _ in range(steps)])
            uniforms[:, lane] = [mirror.random() for _ in range(steps)]
        mask = bernoulli_drop_mask(uniforms, probability)
        assert mask.shape == (steps, lanes)
        for lane in range(lanes):
            assert mask[:, lane].tolist() == scalar[lane]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_gilbert_elliott_mask_matches_scalar_sequence(self, seed):
        """Exact per-receiver loss sequence at equal seeds — the parity
        the fleet engine's delivery mask relies on."""
        channel_args = dict(
            p_good_to_bad=0.15, p_bad_to_good=0.35, loss_good=0.02, loss_bad=0.9
        )
        steps, lanes = 300, 5
        scalar = []
        uniforms = np.empty((steps, lanes, 2))
        for lane in range(lanes):
            process = GilbertElliottLoss(**channel_args)
            rng = random.Random(seed * 100 + lane)
            mirror = random.Random(seed * 100 + lane)
            scalar.append([process.should_drop(rng) for _ in range(steps)])
            for step in range(steps):
                uniforms[step, lane, 0] = mirror.random()
                uniforms[step, lane, 1] = mirror.random()
        mask = gilbert_elliott_drop_mask(uniforms, **channel_args)
        assert mask.shape == (steps, lanes)
        for lane in range(lanes):
            assert mask[:, lane].tolist() == scalar[lane]

    def test_gilbert_elliott_mask_requires_two_draws_per_decision(self):
        with pytest.raises(ConfigurationError):
            gilbert_elliott_drop_mask(np.zeros((4, 2)), 0.1, 0.4)

    def test_bernoulli_mask_validates_probability(self):
        with pytest.raises(ConfigurationError):
            bernoulli_drop_mask(np.zeros(4), 1.5)


class TestMediumIntegration:
    def test_link_quality_builds_process(self):
        assert isinstance(LinkQuality(0.3).make_loss_process(), BernoulliLoss)
        custom = GilbertElliottLoss(0.1, 0.5)
        assert LinkQuality(loss_process=custom).make_loss_process() is custom

    def test_bursty_link_drops_in_runs(self):
        simulator = Simulator()
        medium = BroadcastMedium(simulator, rng=random.Random(2))
        outcomes = []
        medium.attach(
            "node",
            lambda p, t: outcomes.append(p.index),
            LinkQuality(
                delay=0.0,
                loss_process=GilbertElliottLoss.from_average(0.3, mean_burst=10.0),
            ),
        )
        for i in range(2000):
            medium.broadcast(MacAnnouncePacket(i + 1, b"m" * 10))
        simulator.run()
        received = set(outcomes)
        # find the longest missing run
        longest, current = 0, 0
        for i in range(1, 2001):
            if i not in received:
                current += 1
                longest = max(longest, current)
            else:
                current = 0
        assert longest >= 5  # bursts visible end to end
