"""Tests for packet capture and replay."""

from __future__ import annotations

import random

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.protocols.dap import DapReceiver, DapSender
from repro.protocols.packets import MacAnnouncePacket
from repro.protocols.wire import encode_packet
from repro.sim.events import Simulator
from repro.sim.medium import BroadcastMedium
from repro.sim.nodes import SenderNode
from repro.sim.trace import PacketTrace, TraceRecorder, replay_trace
from repro.timesync.intervals import IntervalSchedule
from repro.timesync.sync import LooseTimeSync, SecurityCondition

SEED = b"trace-seed"


def capture_run(intervals=10):
    simulator = Simulator()
    medium = BroadcastMedium(simulator, rng=random.Random(0))
    recorder = TraceRecorder(medium)
    schedule = IntervalSchedule(0.0, 1.0)
    sender = DapSender(SEED, intervals + 1, announce_copies=2)
    medium.attach("sink", lambda p, t: None)
    SenderNode("sender", simulator, medium, sender, schedule, intervals).start()
    simulator.run()
    return sender, recorder.trace


def fresh_receiver(sender):
    condition = SecurityCondition(
        IntervalSchedule(0.0, 1.0), LooseTimeSync(0.01), 1
    )
    return DapReceiver(sender.chain.commitment, condition, b"local", buffers=4)


class TestPacketTrace:
    def test_append_and_iterate(self):
        trace = PacketTrace()
        trace.append(1.0, b"\x05" + b"\x00" * 14)
        trace.append(2.0, b"\x05" + b"\x01" * 14)
        assert len(trace) == 2
        assert trace[0].time == 1.0
        assert trace.duration == 1.0

    def test_time_must_not_regress(self):
        trace = PacketTrace()
        trace.append(2.0, b"x")
        with pytest.raises(SimulationError):
            trace.append(1.0, b"y")

    def test_save_load_roundtrip(self, tmp_path):
        _sender, trace = capture_run()
        path = trace.save(tmp_path / "run.rptr")
        loaded = PacketTrace.load(path)
        assert len(loaded) == len(trace)
        assert [r.payload for r in loaded] == [r.payload for r in trace]
        assert [r.time for r in loaded] == [r.time for r in trace]

    def test_load_rejects_bad_magic(self, tmp_path):
        bad = tmp_path / "bad.rptr"
        bad.write_bytes(b"NOPE" * 4)
        with pytest.raises(ProtocolError):
            PacketTrace.load(bad)

    def test_load_rejects_truncation(self, tmp_path):
        _sender, trace = capture_run(intervals=4)
        path = trace.save(tmp_path / "run.rptr")
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(ProtocolError):
            PacketTrace.load(path)


class TestTraceRecorder:
    def test_records_every_transmission(self):
        sender, trace = capture_run(intervals=6)
        expected = sum(len(sender.packets_for_interval(i)) for i in range(1, 7))
        assert len(trace) == expected

    def test_records_decode_to_packets(self):
        _sender, trace = capture_run(intervals=3)
        kinds = {type(record.decode()).__name__ for record in trace}
        assert kinds == {"MacAnnouncePacket", "MessageKeyPacket"}

    def test_unencodable_objects_skipped(self):
        simulator = Simulator()
        medium = BroadcastMedium(simulator)
        recorder = TraceRecorder(medium)
        medium.broadcast(object())
        medium.broadcast(MacAnnouncePacket(1, b"m" * 10))
        assert recorder.skipped == 1
        assert len(recorder.trace) == 1


class TestReplay:
    def test_replay_reproduces_authentication(self):
        sender, trace = capture_run(intervals=10)
        receiver = fresh_receiver(sender)
        results = replay_trace(trace, receiver)
        authenticated = [
            event for _t, event in results if event.outcome.value == "authenticated"
        ]
        assert len(authenticated) == 9
        assert receiver.stats.forged_accepted == 0

    def test_replay_is_deterministic(self):
        sender, trace = capture_run(intervals=8)
        first = replay_trace(trace, fresh_receiver(sender))
        second = replay_trace(trace, fresh_receiver(sender))
        assert [(t, e.outcome) for t, e in first] == [
            (t, e.outcome) for t, e in second
        ]

    def test_replay_through_disk(self, tmp_path):
        sender, trace = capture_run(intervals=6)
        path = trace.save(tmp_path / "run.rptr")
        receiver = fresh_receiver(sender)
        results = replay_trace(PacketTrace.load(path), receiver)
        assert any(e.outcome.value == "authenticated" for _t, e in results)

    def test_skewed_replay_clock_discards(self):
        """Replaying hours later (bad offset) trips the security
        condition — a replayed capture cannot be re-authenticated as
        fresh traffic, by design."""
        sender, trace = capture_run(intervals=6)
        receiver = fresh_receiver(sender)
        results = replay_trace(trace, receiver, time_offset=100.0)
        assert receiver.stats.authenticated == 0
        assert any(e.outcome.value == "discarded_unsafe" for _t, e in results)
