"""Unit tests for sender/receiver node wrappers."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.protocols.dap import DapReceiver, DapSender
from repro.sim.events import Simulator
from repro.sim.medium import BroadcastMedium, LinkQuality
from repro.sim.nodes import ReceiverNode, SenderNode
from repro.timesync.intervals import IntervalSchedule
from repro.timesync.sync import LooseTimeSync, SecurityCondition

SEED = b"nodes-seed"


@pytest.fixture
def world():
    sim = Simulator()
    medium = BroadcastMedium(sim, rng=random.Random(0))
    schedule = IntervalSchedule(0.0, 1.0)
    condition = SecurityCondition(schedule, LooseTimeSync(0.01), 1)
    sender = DapSender(SEED, chain_length=12)
    return sim, medium, schedule, condition, sender


class TestSenderNode:
    def test_spreads_packets_within_interval(self, world):
        sim, medium, schedule, _cond, sender = world
        times = []
        medium.attach("probe", lambda p, t: times.append(sim.now))
        node = SenderNode("sender", sim, medium, sender, schedule, intervals=1)
        node.start()
        sim.run()
        assert times
        assert all(0.0 <= t <= 1.01 for t in times)

    def test_counts_packets(self, world):
        sim, medium, schedule, _cond, sender = world
        medium.attach("probe", lambda p, t: None)
        node = SenderNode("sender", sim, medium, sender, schedule, intervals=5)
        node.start()
        sim.run()
        # 5 announces + 4 reveals (interval 1 has no reveal)
        assert node.packets_sent == 9

    def test_does_not_hear_itself(self, world):
        sim, medium, schedule, condition, sender = world
        receiver = DapReceiver(sender.chain.commitment, condition, b"local")
        own = ReceiverNode("sender", sim, receiver)
        own.attach(medium)
        node = SenderNode("sender", sim, medium, sender, schedule, intervals=3)
        node.start()
        sim.run()
        assert receiver.stats.packets_received == 0

    def test_validation(self, world):
        sim, medium, schedule, _cond, sender = world
        with pytest.raises(ConfigurationError):
            SenderNode("s", sim, medium, sender, schedule, intervals=0)


class TestReceiverNode:
    def test_receives_and_journals_events(self, world):
        sim, medium, schedule, condition, sender = world
        receiver = DapReceiver(sender.chain.commitment, condition, b"local")
        node = ReceiverNode("r", sim, receiver)
        node.attach(medium)
        SenderNode("sender", sim, medium, sender, schedule, intervals=6).start()
        sim.run()
        assert receiver.stats.packets_received > 0
        assert any(e.outcome.value == "authenticated" for e in node.events)

    def test_events_by_outcome_counts(self, world):
        sim, medium, schedule, condition, sender = world
        receiver = DapReceiver(sender.chain.commitment, condition, b"local")
        node = ReceiverNode("r", sim, receiver)
        node.attach(medium)
        SenderNode("sender", sim, medium, sender, schedule, intervals=6).start()
        sim.run()
        counts = dict(node.events_by_outcome())
        assert counts.get("authenticated", 0) == 5

    def test_clock_skew_within_bound_is_harmless(self, world):
        sim, medium, schedule, condition, sender = world
        receiver = DapReceiver(sender.chain.commitment, condition, b"local")
        node = ReceiverNode("r", sim, receiver, clock_offset=0.005)
        node.attach(medium)
        SenderNode("sender", sim, medium, sender, schedule, intervals=6).start()
        sim.run()
        assert receiver.stats.authenticated == 5
        assert receiver.stats.discarded_unsafe == 0

    def test_excessive_clock_skew_discards_packets(self, world):
        """A receiver whose clock lags far beyond the sync bound sees
        announcements as unsafe — the deployment-assumption failure mode."""
        sim, medium, schedule, condition, sender = world
        receiver = DapReceiver(sender.chain.commitment, condition, b"local")
        node = ReceiverNode("r", sim, receiver, clock_offset=2.0)
        node.attach(medium)
        SenderNode("sender", sim, medium, sender, schedule, intervals=6).start()
        sim.run()
        assert receiver.stats.discarded_unsafe > 0
        assert receiver.stats.authenticated < 5

    def test_local_time_reflects_offset(self, world):
        sim, _medium, _schedule, condition, sender = world
        receiver = DapReceiver(sender.chain.commitment, condition, b"local")
        node = ReceiverNode("r", sim, receiver, clock_offset=1.5)
        assert node.local_time == pytest.approx(1.5)
