"""Unit tests for the multi-seed experiment runner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.experiments import run_config_sweep, run_repeated
from repro.sim.scenario import ScenarioConfig

BASE = ScenarioConfig(
    protocol="dap", intervals=25, receivers=2, buffers=3, attack_fraction=0.7
)


class TestRunRepeated:
    def test_runs_every_seed(self):
        result = run_repeated(BASE, seeds=[1, 2, 3])
        assert len(result.results) == 3
        assert result.seeds == [1, 2, 3]

    def test_estimates_summarise_runs(self):
        result = run_repeated(BASE, seeds=[1, 2, 3])
        rates = [r.authentication_rate for r in result.results]
        assert result.authentication_rate.mean == pytest.approx(
            sum(rates) / len(rates)
        )
        assert result.authentication_rate.count == 3

    def test_security_invariant_aggregated(self):
        result = run_repeated(BASE, seeds=[1, 2, 3, 4])
        assert result.total_forged_accepted == 0

    def test_peak_memory_is_worst_case(self):
        result = run_repeated(BASE, seeds=[1, 2])
        peaks = [r.fleet.peak_buffer_bits for r in result.results]
        assert result.peak_buffer_bits == max(peaks)

    def test_variance_exists_under_attack(self):
        """Different seeds roll different reservoirs."""
        result = run_repeated(BASE, seeds=list(range(1, 7)))
        assert result.authentication_rate.std > 0.0

    def test_clean_channel_has_no_variance(self):
        import dataclasses

        clean = dataclasses.replace(BASE, attack_fraction=0.0)
        result = run_repeated(clean, seeds=[1, 2, 3])
        assert result.authentication_rate.mean == 1.0
        assert result.authentication_rate.std == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_repeated(BASE, seeds=[])
        with pytest.raises(ConfigurationError):
            run_repeated(BASE, seeds=[1, 1])


class TestRunConfigSweep:
    def test_sweeps_buffers(self):
        cells = run_config_sweep(BASE, "buffers", [1, 4, 8], seeds=[1, 2])
        assert [cell.config.buffers for cell in cells] == [1, 4, 8]
        rates = [cell.result.authentication_rate.mean for cell in cells]
        assert rates[0] < rates[-1]

    def test_default_labels(self):
        cells = run_config_sweep(BASE, "buffers", [2], seeds=[1])
        assert cells[0].label == "buffers=2"

    def test_custom_labels(self):
        cells = run_config_sweep(
            BASE, "attack_fraction", [0.5], seeds=[1], label=lambda v: f"p={v}"
        )
        assert cells[0].label == "p=0.5"

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            run_config_sweep(BASE, "bogus_field", [1], seeds=[1])

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            run_config_sweep(BASE, "buffers", [], seeds=[1])
