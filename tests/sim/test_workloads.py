"""Unit tests for the crowdsensing workload generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.protocols.messages import MESSAGE_BYTES
from repro.sim.workloads import CrowdsensingWorkload, SensorReport


class TestTasks:
    def test_task_count(self):
        assert len(CrowdsensingWorkload(num_tasks=7).tasks) == 7

    def test_tasks_on_unit_grid(self):
        for task in CrowdsensingWorkload(num_tasks=10).tasks:
            assert 0.0 <= task.x < 1.0
            assert 0.0 <= task.y < 1.0

    def test_kinds_cycle(self):
        workload = CrowdsensingWorkload(num_tasks=6, kinds=("a", "b"))
        kinds = [task.kind for task in workload.tasks]
        assert kinds == ["a", "b", "a", "b", "a", "b"]

    def test_deterministic_per_seed(self):
        a = CrowdsensingWorkload(num_tasks=3, seed=5)
        b = CrowdsensingWorkload(num_tasks=3, seed=5)
        assert a.tasks == b.tasks

    def test_seed_changes_placement(self):
        a = CrowdsensingWorkload(num_tasks=3, seed=5)
        b = CrowdsensingWorkload(num_tasks=3, seed=6)
        assert a.tasks != b.tasks

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload(num_tasks=0)
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload(kinds=())


class TestReadings:
    def test_deterministic(self):
        workload = CrowdsensingWorkload(seed=2)
        assert workload.reading(5, 1) == workload.reading(5, 1)

    def test_varies_over_time(self):
        workload = CrowdsensingWorkload(seed=2)
        readings = {workload.reading(i, 0) for i in range(10)}
        assert len(readings) > 1

    def test_task_baseline_separates(self):
        workload = CrowdsensingWorkload(num_tasks=3, seed=2)
        assert workload.reading(1, 2) > workload.reading(1, 0)

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload(num_tasks=2).reading(1, 5)


class TestReportEncoding:
    def test_report_is_paper_sized(self):
        payload = CrowdsensingWorkload().report_for(3, 0)
        assert len(payload) == MESSAGE_BYTES

    def test_roundtrip(self):
        report = SensorReport(task_id=7, interval=42, reading=51.25)
        payload = CrowdsensingWorkload.encode_report(report)
        assert CrowdsensingWorkload.decode_report(payload) == report

    def test_report_for_decodes(self):
        workload = CrowdsensingWorkload(num_tasks=3, seed=1)
        report = CrowdsensingWorkload.decode_report(workload.report_for(9, 2))
        assert report.interval == 9
        assert report.task_id == 2
        assert report.reading == pytest.approx(workload.reading(9, 2))

    def test_copies_cycle_tasks(self):
        workload = CrowdsensingWorkload(num_tasks=2, seed=1)
        r0 = CrowdsensingWorkload.decode_report(workload.report_for(1, 0))
        r2 = CrowdsensingWorkload.decode_report(workload.report_for(1, 2))
        assert r0.task_id == r2.task_id == 0

    def test_corrupt_padding_detected(self):
        payload = bytearray(CrowdsensingWorkload().report_for(1, 0))
        payload[-1] ^= 0xFF
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload.decode_report(bytes(payload))

    def test_wrong_length_detected(self):
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload.decode_report(b"short")
