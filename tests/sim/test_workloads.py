"""Unit tests for the workload generators (all three families)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.protocols.messages import MESSAGE_BYTES
from repro.sim.scenario import ScenarioConfig
from repro.sim.workloads import (
    BeaconReport,
    CrowdsensingWorkload,
    RemoteIdReport,
    RemoteIdWorkload,
    SensorReport,
    VehicularBeaconWorkload,
    workload_for,
)

U32_MAX = 2**32 - 1


class TestTasks:
    def test_task_count(self):
        assert len(CrowdsensingWorkload(num_tasks=7).tasks) == 7

    def test_tasks_on_unit_grid(self):
        for task in CrowdsensingWorkload(num_tasks=10).tasks:
            assert 0.0 <= task.x < 1.0
            assert 0.0 <= task.y < 1.0

    def test_kinds_cycle(self):
        workload = CrowdsensingWorkload(num_tasks=6, kinds=("a", "b"))
        kinds = [task.kind for task in workload.tasks]
        assert kinds == ["a", "b", "a", "b", "a", "b"]

    def test_deterministic_per_seed(self):
        a = CrowdsensingWorkload(num_tasks=3, seed=5)
        b = CrowdsensingWorkload(num_tasks=3, seed=5)
        assert a.tasks == b.tasks

    def test_seed_changes_placement(self):
        a = CrowdsensingWorkload(num_tasks=3, seed=5)
        b = CrowdsensingWorkload(num_tasks=3, seed=6)
        assert a.tasks != b.tasks

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload(num_tasks=0)
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload(kinds=())


class TestReadings:
    def test_deterministic(self):
        workload = CrowdsensingWorkload(seed=2)
        assert workload.reading(5, 1) == workload.reading(5, 1)

    def test_varies_over_time(self):
        workload = CrowdsensingWorkload(seed=2)
        readings = {workload.reading(i, 0) for i in range(10)}
        assert len(readings) > 1

    def test_task_baseline_separates(self):
        workload = CrowdsensingWorkload(num_tasks=3, seed=2)
        assert workload.reading(1, 2) > workload.reading(1, 0)

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload(num_tasks=2).reading(1, 5)


class TestReportEncoding:
    def test_report_is_paper_sized(self):
        payload = CrowdsensingWorkload().report_for(3, 0)
        assert len(payload) == MESSAGE_BYTES

    def test_roundtrip(self):
        report = SensorReport(task_id=7, interval=42, reading=51.25)
        payload = CrowdsensingWorkload.encode_report(report)
        assert CrowdsensingWorkload.decode_report(payload) == report

    def test_report_for_decodes(self):
        workload = CrowdsensingWorkload(num_tasks=3, seed=1)
        report = CrowdsensingWorkload.decode_report(workload.report_for(9, 2))
        assert report.interval == 9
        assert report.task_id == 2
        assert report.reading == pytest.approx(workload.reading(9, 2))

    def test_copies_cycle_tasks(self):
        workload = CrowdsensingWorkload(num_tasks=2, seed=1)
        r0 = CrowdsensingWorkload.decode_report(workload.report_for(1, 0))
        r2 = CrowdsensingWorkload.decode_report(workload.report_for(1, 2))
        assert r0.task_id == r2.task_id == 0

    def test_corrupt_padding_detected(self):
        payload = bytearray(CrowdsensingWorkload().report_for(1, 0))
        payload[-1] ^= 0xFF
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload.decode_report(bytes(payload))

    def test_wrong_length_detected(self):
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload.decode_report(b"short")

    @pytest.mark.parametrize("kind", CrowdsensingWorkload.DEFAULT_KINDS)
    def test_roundtrip_across_kinds(self, kind):
        """Every sensing modality's reports survive the wire format."""
        kinds = (kind,)
        workload = CrowdsensingWorkload(num_tasks=3, seed=2, kinds=kinds)
        for task in workload.tasks:
            assert task.kind == kind
            decoded = CrowdsensingWorkload.decode_report(
                workload.report_for(4, task.task_id)
            )
            assert decoded.task_id == task.task_id

    @pytest.mark.parametrize("interval", [0, U32_MAX])
    def test_interval_boundaries_roundtrip(self, interval):
        report = SensorReport(task_id=0, interval=interval, reading=1.5)
        decoded = CrowdsensingWorkload.decode_report(
            CrowdsensingWorkload.encode_report(report)
        )
        assert decoded == report

    @pytest.mark.parametrize("interval", [-1, U32_MAX + 1])
    def test_interval_out_of_range_rejected(self, interval):
        report = SensorReport(task_id=0, interval=interval, reading=1.5)
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload.encode_report(report)

    @pytest.mark.parametrize("task_id", [-1, U32_MAX + 1])
    def test_task_id_out_of_range_rejected(self, task_id):
        report = SensorReport(task_id=task_id, interval=1, reading=1.5)
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload.encode_report(report)

    @pytest.mark.parametrize(
        "reading", [math.nan, math.inf, -math.inf]
    )
    def test_non_finite_reading_rejected(self, reading):
        report = SensorReport(task_id=0, interval=1, reading=reading)
        with pytest.raises(ConfigurationError):
            CrowdsensingWorkload.encode_report(report)

    def test_distinct_sources_is_cycle_period(self):
        workload = CrowdsensingWorkload(num_tasks=3, seed=1)
        assert workload.distinct_sources == 3
        for copy in range(6):
            same = workload.report_for(2, copy)
            again = workload.report_for(2, copy + workload.distinct_sources)
            assert same == again


class TestVehicularBeaconWorkload:
    def test_payload_is_paper_sized(self):
        payload = VehicularBeaconWorkload().report_for(3, 1)
        assert len(payload) == MESSAGE_BYTES

    def test_roundtrip_f32_precision(self):
        """Positions survive at f32 precision, flags exactly."""
        workload = VehicularBeaconWorkload(num_vehicles=3, seed=4)
        decoded = VehicularBeaconWorkload.decode_report(
            workload.report_for(7, 2)
        )
        x, y, speed = workload.state(7, 2)
        assert decoded.vehicle_id == 2
        assert decoded.interval == 7
        assert decoded.x == pytest.approx(x, rel=1e-6)
        assert decoded.y == pytest.approx(y, rel=1e-6)
        assert decoded.speed == pytest.approx(speed, rel=1e-6)
        assert decoded.cooperative is True

    def test_cooperative_flag_roundtrips_off(self):
        workload = VehicularBeaconWorkload(cooperative=False)
        decoded = VehicularBeaconWorkload.decode_report(
            workload.report_for(1, 0)
        )
        assert decoded.cooperative is False

    def test_vehicles_move_between_intervals(self):
        workload = VehicularBeaconWorkload(num_vehicles=1, seed=1)
        x0, y0, _ = workload.state(0, 0)
        x9, y9, _ = workload.state(9, 0)
        assert (x0, y0) != (x9, y9)

    def test_non_finite_coordinate_rejected(self):
        report = BeaconReport(
            vehicle_id=0, interval=1, x=math.nan, y=0.0, speed=1.0,
            cooperative=True,
        )
        with pytest.raises(ConfigurationError):
            VehicularBeaconWorkload.encode_report(report)

    def test_corrupt_padding_detected(self):
        payload = bytearray(VehicularBeaconWorkload().report_for(1, 0))
        payload[-1] ^= 0xFF
        with pytest.raises(ConfigurationError):
            VehicularBeaconWorkload.decode_report(bytes(payload))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VehicularBeaconWorkload(num_vehicles=0)
        with pytest.raises(ConfigurationError):
            VehicularBeaconWorkload(beacon_period=0.0)
        with pytest.raises(ConfigurationError):
            VehicularBeaconWorkload(num_vehicles=2).state(1, 5)

    def test_distinct_sources_is_cycle_period(self):
        workload = VehicularBeaconWorkload(num_vehicles=2, seed=1)
        assert workload.distinct_sources == 2
        assert workload.report_for(3, 1) == workload.report_for(3, 3)


class TestRemoteIdWorkload:
    def test_payload_is_paper_sized(self):
        payload = RemoteIdWorkload().report_for(3, 1)
        assert len(payload) == MESSAGE_BYTES

    def test_roundtrip_f32_precision(self):
        workload = RemoteIdWorkload(num_aircraft=3, seed=4)
        decoded = RemoteIdWorkload.decode_report(workload.report_for(7, 1))
        lat, lon = workload.position(7, 1)
        assert decoded.aircraft_id == 1
        assert decoded.interval == 7
        assert decoded.latitude == pytest.approx(lat, rel=1e-6)
        assert decoded.longitude == pytest.approx(lon, rel=1e-6)
        assert decoded.emergency == workload.emergency(7, 1)

    def test_emergency_bit_is_rare_and_deterministic(self):
        workload = RemoteIdWorkload(num_aircraft=1, seed=3)
        bits = [workload.emergency(i, 0) for i in range(500)]
        assert bits == [workload.emergency(i, 0) for i in range(500)]
        assert 0 < sum(bits) < 50

    def test_non_finite_position_rejected(self):
        report = RemoteIdReport(
            aircraft_id=0, interval=1, latitude=math.inf, longitude=0.0,
            emergency=False,
        )
        with pytest.raises(ConfigurationError):
            RemoteIdWorkload.encode_report(report)

    def test_corrupt_padding_detected(self):
        payload = bytearray(RemoteIdWorkload().report_for(1, 0))
        payload[-1] ^= 0xFF
        with pytest.raises(ConfigurationError):
            RemoteIdWorkload.decode_report(bytes(payload))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RemoteIdWorkload(num_aircraft=0)
        with pytest.raises(ConfigurationError):
            RemoteIdWorkload(cadence_hz=0.0)
        with pytest.raises(ConfigurationError):
            RemoteIdWorkload(num_aircraft=2).position(1, 5)

    def test_distinct_sources_is_cycle_period(self):
        workload = RemoteIdWorkload(num_aircraft=2, seed=1)
        assert workload.distinct_sources == 2
        assert workload.report_for(3, 0) == workload.report_for(3, 2)


class TestWorkloadFactory:
    def test_dispatch_by_family(self):
        cases = {
            "crowdsensing": CrowdsensingWorkload,
            "vehicular-beacon": VehicularBeaconWorkload,
            "remote-id": RemoteIdWorkload,
        }
        for name, cls in cases.items():
            config = ScenarioConfig(workload=name, sensing_tasks=3, seed=9)
            workload = workload_for(config)
            assert isinstance(workload, cls)
            assert workload.distinct_sources == 3

    def test_unknown_workload_rejected_by_config(self):
        with pytest.raises(ConfigurationError, match="workload"):
            ScenarioConfig(workload="smoke-signals")

    def test_same_config_same_payloads(self):
        config = ScenarioConfig(workload="vehicular-beacon", seed=5)
        a, b = workload_for(config), workload_for(config)
        assert a.report_for(2, 1) == b.report_for(2, 1)
