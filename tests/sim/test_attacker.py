"""Unit tests for the DoS attacker models."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.game.parameters import paper_parameters
from repro.protocols.packets import (
    FORGED,
    CdmPacket,
    MacAnnouncePacket,
    MessageKeyPacket,
    MuTeslaDataPacket,
    TeslaPacket,
)
from repro.sim.attacker import (
    FloodingAttacker,
    GameAwareAttacker,
    announce_forgery_factory,
    cdm_forgery_factory,
    data_forgery_factory,
    forged_copies_for_fraction,
    message_key_forgery_factory,
    tesla_forgery_factory,
)
from repro.sim.events import Simulator
from repro.sim.medium import BroadcastMedium
from repro.timesync.intervals import IntervalSchedule


class TestForgedCopiesForFraction:
    def test_matches_target_fraction(self):
        for p in (0.2, 0.5, 0.8, 0.9):
            forged = forged_copies_for_fraction(10, p)
            assert forged / (forged + 10) == pytest.approx(p, abs=0.05)

    def test_zero_attack(self):
        assert forged_copies_for_fraction(10, 0.0) == 0

    def test_at_least_one_when_attacking(self):
        assert forged_copies_for_fraction(10, 0.01) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            forged_copies_for_fraction(-1, 0.5)
        with pytest.raises(ConfigurationError):
            forged_copies_for_fraction(10, 1.0)


class TestForgeryFactories:
    @pytest.fixture
    def frng(self):
        return random.Random(9)

    def test_announce_factory(self, frng):
        packet = announce_forgery_factory()(3, 0, frng)
        assert isinstance(packet, MacAnnouncePacket)
        assert packet.index == 3
        assert packet.provenance == FORGED

    def test_data_factory(self, frng):
        packet = data_forgery_factory()(3, 1, frng)
        assert isinstance(packet, MuTeslaDataPacket)
        assert packet.provenance == FORGED

    def test_tesla_factory(self, frng):
        packet = tesla_forgery_factory()(5, 0, frng)
        assert isinstance(packet, TeslaPacket)
        assert packet.provenance == FORGED

    def test_cdm_factory_maps_high_interval(self, frng):
        factory = cdm_forgery_factory(lambda flat: (flat - 1) // 4 + 1)
        packet = factory(6, 0, frng)
        assert isinstance(packet, CdmPacket)
        assert packet.high_index == 2

    def test_message_key_factory(self, frng):
        packet = message_key_forgery_factory()(2, 0, frng)
        assert isinstance(packet, MessageKeyPacket)
        assert packet.provenance == FORGED

    def test_forgeries_vary(self, frng):
        factory = announce_forgery_factory()
        assert factory(1, 0, frng).mac != factory(1, 1, frng).mac


class TestFloodingAttacker:
    def test_injects_expected_volume(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, rng=random.Random(0))
        received = []
        medium.attach("r", lambda p, t: received.append(p))
        attacker = FloodingAttacker(
            sim,
            medium,
            IntervalSchedule(0.0, 1.0),
            announce_forgery_factory(),
            p=0.8,
            authentic_copies_per_interval=5,
            intervals=4,
            rng=random.Random(1),
        )
        attacker.start()
        sim.run()
        assert attacker.packets_injected == 20 * 4
        assert len(received) == 80
        assert all(p.provenance == FORGED for p in received)

    def test_burst_confined_to_window(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, rng=random.Random(0))
        times = []
        medium.attach("r", lambda p, t: times.append(sim.now))
        attacker = FloodingAttacker(
            sim,
            medium,
            IntervalSchedule(0.0, 1.0),
            announce_forgery_factory(),
            p=0.5,
            authentic_copies_per_interval=4,
            intervals=1,
            burst_fraction=0.25,
            rng=random.Random(1),
        )
        attacker.start()
        sim.run()
        assert times
        assert max(times) <= 0.25 + 0.01  # window + link delay

    def test_validation(self):
        sim = Simulator()
        medium = BroadcastMedium(sim)
        with pytest.raises(ConfigurationError):
            FloodingAttacker(
                sim, medium, IntervalSchedule(0.0, 1.0),
                announce_forgery_factory(), 0.5, 5, intervals=0,
            )
        with pytest.raises(ConfigurationError):
            FloodingAttacker(
                sim, medium, IntervalSchedule(0.0, 1.0),
                announce_forgery_factory(), 0.5, 5, intervals=3,
                burst_fraction=0.0,
            )


class TestGameAwareAttacker:
    def _run(self, params, defender_share, intervals=120):
        sim = Simulator()
        medium = BroadcastMedium(sim, rng=random.Random(0))
        medium.attach("r", lambda p, t: None)
        attacker = GameAwareAttacker(
            sim,
            medium,
            IntervalSchedule(0.0, 1.0),
            announce_forgery_factory(),
            params=params,
            defender_share=defender_share,
            authentic_copies_per_interval=5,
            intervals=intervals,
            steps_per_interval=50,
            rng=random.Random(2),
        )
        attacker.start()
        sim.run()
        return attacker

    def test_share_converges_to_edge_equilibrium(self):
        """Against full defense (X = 1) with medium m, Y converges to
        Y' = p^m Ra / (k1 xa)."""
        params = paper_parameters(p=0.8, m=14)
        attacker = self._run(params, defender_share=1.0)
        assert attacker.attack_share == pytest.approx(0.55, abs=0.02)

    def test_attack_rate_tracks_share(self):
        params = paper_parameters(p=0.8, m=14)
        attacker = self._run(params, defender_share=1.0, intervals=200)
        empirical = sum(attacker.attack_decisions) / len(attacker.attack_decisions)
        assert empirical == pytest.approx(attacker.attack_share, abs=0.12)

    def test_full_aggression_against_undefended(self):
        """With X = 0 and profitable attacks, Y climbs to 1."""
        params = paper_parameters(p=0.8, m=5)
        attacker = self._run(params, defender_share=0.0)
        assert attacker.attack_share == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        sim = Simulator()
        medium = BroadcastMedium(sim)
        with pytest.raises(ConfigurationError):
            GameAwareAttacker(
                sim, medium, IntervalSchedule(0.0, 1.0),
                announce_forgery_factory(),
                params=paper_parameters(p=0.8, m=5),
                defender_share=1.5,
                authentic_copies_per_interval=5,
                intervals=3,
            )
