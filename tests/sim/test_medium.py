"""Unit tests for the broadcast medium."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.protocols.packets import FORGED, MacAnnouncePacket
from repro.sim.events import Simulator
from repro.sim.medium import BroadcastMedium, LinkQuality


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def medium(sim):
    return BroadcastMedium(sim, rng=random.Random(1))


PACKET = MacAnnouncePacket(1, b"m" * 10)
FORGED_PACKET = MacAnnouncePacket(1, b"f" * 10, provenance=FORGED)


class TestDelivery:
    def test_delivers_to_all_attached(self, sim, medium):
        got = {"a": [], "b": []}
        medium.attach("a", lambda p, t: got["a"].append(p))
        medium.attach("b", lambda p, t: got["b"].append(p))
        medium.broadcast(PACKET)
        sim.run()
        assert got["a"] == [PACKET]
        assert got["b"] == [PACKET]

    def test_exclude_sender(self, sim, medium):
        got = []
        medium.attach("self", lambda p, t: got.append(("self", p)))
        medium.attach("other", lambda p, t: got.append(("other", p)))
        medium.broadcast(PACKET, exclude="self")
        sim.run()
        assert got == [("other", PACKET)]

    def test_link_delay_applied(self, sim, medium):
        times = []
        medium.attach("a", lambda p, t: times.append(sim.now), LinkQuality(0.0, 0.5))
        medium.broadcast(PACKET)
        sim.run()
        assert times == [0.5]

    def test_lossy_link_drops(self, sim):
        medium = BroadcastMedium(sim, rng=random.Random(7))
        got = []
        medium.attach("a", lambda p, t: got.append(p), LinkQuality(1.0, 0.0))
        assert medium.broadcast(PACKET) == 0
        sim.run()
        assert got == []
        assert medium.drops == 1

    def test_partial_loss_statistics(self, sim):
        medium = BroadcastMedium(sim, rng=random.Random(3))
        count = [0]
        medium.attach("a", lambda p, t: count.__setitem__(0, count[0] + 1),
                      LinkQuality(0.3, 0.0))
        for _ in range(2000):
            medium.broadcast(PACKET)
        sim.run()
        assert count[0] / 2000 == pytest.approx(0.7, abs=0.04)

    def test_duplicate_name_rejected(self, medium):
        medium.attach("a", lambda p, t: None)
        with pytest.raises(ConfigurationError):
            medium.attach("a", lambda p, t: None)

    def test_attached_names(self, medium):
        medium.attach("x", lambda p, t: None)
        medium.attach("y", lambda p, t: None)
        assert medium.attached_names == ["x", "y"]


class TestAccounting:
    def test_bits_by_provenance(self, medium):
        medium.broadcast(PACKET)
        medium.broadcast(FORGED_PACKET)
        medium.broadcast(FORGED_PACKET)
        assert medium.bits_sent() == 112
        assert medium.bits_sent(FORGED) == 224

    def test_packets_by_provenance(self, medium):
        medium.broadcast(PACKET)
        medium.broadcast(FORGED_PACKET)
        assert medium.packets_sent() == 1
        assert medium.packets_sent(FORGED) == 1

    def test_forged_bandwidth_fraction(self, medium):
        medium.broadcast(PACKET)
        medium.broadcast(FORGED_PACKET)
        assert medium.forged_bandwidth_fraction() == pytest.approx(0.5)

    def test_empty_medium_fraction_zero(self, medium):
        assert medium.forged_bandwidth_fraction() == 0.0

    def test_unknown_objects_zero_sized(self, medium):
        medium.broadcast(object())
        assert medium.bits_sent() == 0
        assert medium.packets_sent() == 1


class TestTaps:
    def test_tap_sees_every_transmission_pre_loss(self, sim):
        medium = BroadcastMedium(sim, rng=random.Random(7))
        medium.attach("lossy", lambda p, t: None, LinkQuality(1.0, 0.0))
        seen = []
        medium.add_tap(lambda packet, time: seen.append((packet, time)))
        medium.broadcast(PACKET)
        medium.broadcast(FORGED_PACKET)
        assert len(seen) == 2  # taps fire even when every link drops

    def test_tap_gets_send_time(self, sim, medium):
        times = []
        medium.add_tap(lambda packet, time: times.append(time))
        sim.schedule(3.0, lambda: medium.broadcast(PACKET))
        sim.run()
        assert times == [3.0]

    def test_multiple_taps(self, medium):
        a, b = [], []
        medium.add_tap(lambda p, t: a.append(p))
        medium.add_tap(lambda p, t: b.append(p))
        medium.broadcast(PACKET)
        assert a == b == [PACKET]
