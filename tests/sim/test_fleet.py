"""Vectorized fleet engine: exact parity with the DES across every
protocol family, sharding/streaming reduction, and the
statistical-equivalence harness."""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine import stable_key
from repro.engine.executors import ParallelExecutor
from repro.errors import ConfigurationError
from repro.net.harness import shard_sizes
from repro.scenarios.families import ALL_PROTOCOLS
from repro.sim import fleet
from repro import perf
from repro.crypto.kernels import fast_umac, kernels_disabled
from repro.sim.fleet import (
    EquivalenceReport,
    run_fleet_scenario,
    shard_plan,
    statistical_equivalence,
    supports,
)
from repro.sim.metrics import FleetAggregate
from repro.sim.scenario import ScenarioConfig, run_scenario

#: The canonical catalog seeds (every dual-seed entry declares these).
CATALOG_SEEDS = (7, 11)


def _assert_identical(config: ScenarioConfig):
    """Both engines at the same seed must agree on every metric."""
    des = run_scenario(dataclasses.replace(config, engine="des"))
    fast = run_fleet_scenario(config)
    assert fast.fleet == des.fleet
    assert fast.sent_authentic == des.sent_authentic
    assert fast.forged_bandwidth_fraction == des.forged_bandwidth_fraction
    assert fast.simulated_seconds == des.simulated_seconds
    return fast


class TestExactParity:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    @pytest.mark.parametrize("attack", [0.0, 0.5])
    def test_clean_channel(self, protocol, attack):
        _assert_identical(
            ScenarioConfig(
                protocol=protocol,
                intervals=15,
                receivers=4,
                buffers=4,
                attack_fraction=attack,
                seed=11,
                engine="vectorized",
            )
        )

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    @pytest.mark.parametrize("seed", CATALOG_SEEDS)
    def test_bernoulli_loss_at_catalog_seeds(self, protocol, seed):
        _assert_identical(
            ScenarioConfig(
                protocol=protocol,
                intervals=15,
                receivers=4,
                buffers=3,
                attack_fraction=0.5,
                loss_probability=0.2,
                seed=seed,
                engine="vectorized",
            )
        )

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_t3_storm(self, protocol):
        """T3-tier storm: p=0.8 burst flood over a bursty GE channel."""
        result = _assert_identical(
            ScenarioConfig(
                protocol=protocol,
                intervals=20,
                receivers=5,
                buffers=4,
                attack_fraction=0.8,
                attack_burst_fraction=0.25,
                loss_probability=0.2,
                loss_mean_burst=4.0,
                seed=7,
                engine="vectorized",
            )
        )
        # The paper's security invariant survives the fast path.
        assert result.fleet.total_forged_accepted == 0

    def test_heavy_flood_and_small_buffers(self):
        result = _assert_identical(
            ScenarioConfig(
                protocol="dap",
                intervals=20,
                receivers=6,
                buffers=1,
                attack_fraction=0.9,
                loss_probability=0.1,
                seed=4,
                engine="vectorized",
            )
        )
        assert result.fleet.total_forged_accepted == 0

    @pytest.mark.parametrize("protocol", ["tesla", "mu_tesla", "multilevel"])
    def test_multiple_packets_per_interval(self, protocol):
        _assert_identical(
            ScenarioConfig(
                protocol=protocol,
                intervals=12,
                receivers=3,
                buffers=4,
                attack_fraction=0.3,
                packets_per_interval=3,
                disclosure_delay=2,
                seed=21,
                engine="vectorized",
            )
        )

    @pytest.mark.parametrize("protocol", ["multilevel", "eftp", "edrp"])
    def test_multilevel_parameter_variations(self, protocol):
        _assert_identical(
            ScenarioConfig(
                protocol=protocol,
                intervals=25,
                receivers=4,
                buffers=2,
                low_per_high=3,
                cdm_copies=6,
                attack_fraction=0.5,
                loss_probability=0.3,
                seed=13,
                engine="vectorized",
            )
        )

    def test_run_scenario_dispatches_to_fleet(self):
        config = ScenarioConfig(
            protocol="dap",
            intervals=10,
            receivers=3,
            attack_fraction=0.5,
            seed=5,
            engine="vectorized",
        )
        via_dispatch = run_scenario(config)
        direct = run_fleet_scenario(config)
        assert via_dispatch.fleet == direct.fleet
        # The DES path returns live nodes; the fleet path has none.
        assert via_dispatch.nodes == ()


class TestSupport:
    def test_supports_every_catalog_family(self):
        for protocol in ALL_PROTOCOLS:
            assert supports(ScenarioConfig(protocol=protocol)), protocol

    def test_engine_validated_at_config_time(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(engine="warp")

    def test_invalid_summary_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="summary"):
            run_fleet_scenario(
                ScenarioConfig(protocol="dap", intervals=6, receivers=2),
                summary="per-node",
            )

    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="shards"):
            run_fleet_scenario(
                ScenarioConfig(protocol="dap", intervals=6, receivers=2),
                shards=0,
            )


class TestSharding:
    def test_shard_plan_matches_harness_shard_sizes(self):
        """Regression: fleet shard plans reuse net.harness.shard_sizes,
        not a parallel implementation."""
        for receivers, shards in [(10, 3), (1000, 7), (5, 5), (64, 1)]:
            plan = shard_plan(receivers, shards)
            assert [stop - start for start, stop in plan] == shard_sizes(
                receivers, shards
            )
            # Contiguous cover of [0, receivers).
            assert plan[0][0] == 0
            assert plan[-1][1] == receivers
            for (_, a_stop), (b_start, _) in zip(plan, plan[1:]):
                assert a_stop == b_start

    def test_shard_plan_validates_like_shard_sizes(self):
        with pytest.raises(ConfigurationError):
            shard_plan(10, 0)
        with pytest.raises(ConfigurationError):
            shard_plan(3, 5)

    @pytest.mark.parametrize("protocol", ["dap", "tesla", "multilevel"])
    def test_sharded_run_is_invariant(self, protocol):
        config = ScenarioConfig(
            protocol=protocol,
            intervals=15,
            receivers=7,
            buffers=3,
            attack_fraction=0.5,
            loss_probability=0.2,
            seed=7,
            engine="vectorized",
        )
        base = run_fleet_scenario(config)
        for shards in (2, 3, 7, 50):  # 50 clamps to the receiver count
            sharded = run_fleet_scenario(config, shards=shards)
            assert sharded.fleet == base.fleet, shards

    def test_aggregate_summary_matches_nodes_summary(self):
        config = ScenarioConfig(
            protocol="edrp",
            intervals=15,
            receivers=6,
            buffers=3,
            attack_fraction=0.5,
            loss_probability=0.2,
            loss_mean_burst=4.0,
            seed=11,
            engine="vectorized",
        )
        nodes = run_fleet_scenario(config)
        aggregate = run_fleet_scenario(config, shards=3, summary="aggregate")
        assert isinstance(aggregate.fleet, FleetAggregate)
        assert aggregate.fleet == FleetAggregate.from_summary(nodes.fleet)

    def test_parallel_executor_with_shared_memory_matches_serial(self):
        config = ScenarioConfig(
            protocol="multilevel",
            intervals=12,
            receivers=6,
            buffers=3,
            attack_fraction=0.5,
            loss_probability=0.2,
            seed=7,
            engine="vectorized",
        )
        serial = run_fleet_scenario(config, shards=3)
        with ParallelExecutor(jobs=2) as executor:
            parallel = run_fleet_scenario(config, shards=3, executor=executor)
            aggregate = run_fleet_scenario(
                config, shards=3, executor=executor, summary="aggregate"
            )
        assert parallel.fleet == serial.fleet
        assert aggregate.fleet == FleetAggregate.from_summary(serial.fleet)


class TestBatchedReplay:
    """The PR-9 hot path: batched MACs and the vectorized reservoir
    kernel behind the kernel switch."""

    @staticmethod
    def _config(protocol="dap", seed=7):
        return ScenarioConfig(
            protocol=protocol,
            intervals=20,
            receivers=6,
            buffers=4,
            attack_fraction=0.5,
            loss_probability=0.1,
            seed=seed,
            engine="vectorized",
        )

    @pytest.mark.parametrize("protocol", ["dap", "tesla_pp"])
    @pytest.mark.parametrize("seed", CATALOG_SEEDS)
    def test_reservoir_kernel_matches_reference_replay(self, protocol, seed):
        """Kernels on (one-pass numpy reservoir) vs off (scalar
        draw-for-draw loop) must be byte-identical — the correctness
        gate for the vectorized Algorithm-2 kernel."""
        config = self._config(protocol, seed)
        kernel = run_fleet_scenario(config)
        with kernels_disabled():
            reference = run_fleet_scenario(config)
        assert kernel.fleet == reference.fleet
        assert kernel.sent_authentic == reference.sent_authentic
        assert (
            kernel.forged_bandwidth_fraction
            == reference.forged_bandwidth_fraction
        )

    @pytest.mark.parametrize("protocol", ["dap", "multilevel"])
    def test_replay_batches_macs_not_single_pairs(self, protocol):
        """Regression for the single-pair verify_many anti-pattern: one
        batch call covers a whole slot's digests, so digests far
        outnumber batch calls. If plan construction or the replay
        degrades to one pair per call again, the ratio collapses to ~1
        and this assertion goes red."""
        config = dataclasses.replace(
            self._config(protocol), packets_per_interval=4
        )
        with perf.collecting() as registry:
            run_fleet_scenario(config)
        batches = registry.counter("crypto.mac.batches")
        macs = registry.counter("crypto.mac")
        assert batches > 0
        assert macs / batches >= 2.0

    def test_fast_umac_keeps_engines_byte_identical(self):
        """Both engines route μMACs through MicroMacScheme, so the
        non-faithful FAST_UMAC bytes change *both* identically: the
        DES/fleet equivalence harness must still report exact
        mirroring with the switch on."""
        config = self._config()
        with fast_umac(True):
            report = statistical_equivalence(config, seeds=range(1, 4))
        assert report.passes
        assert report.identical == len(report.seeds)

    def test_fast_umac_is_statistically_equivalent_to_faithful(self):
        """Fast-on vs fast-off runs may differ on individual 2^-24
        collision placements but must agree on aggregate figures."""
        config = self._config()
        faithful = run_fleet_scenario(config)
        with fast_umac(True):
            fast = run_fleet_scenario(config)
        assert fast.sent_authentic == faithful.sent_authentic
        assert abs(
            fast.authentication_rate - faithful.authentication_rate
        ) <= 0.05
        assert abs(
            fast.attack_success_rate - faithful.attack_success_rate
        ) <= 0.05


class TestCacheKeys:
    def test_engines_never_alias_in_the_result_cache(self):
        base = ScenarioConfig(protocol="dap", intervals=10, receivers=2)
        vectorized = dataclasses.replace(base, engine="vectorized")
        assert stable_key(base) != stable_key(vectorized)


class TestStatisticalEquivalence:
    def test_passes_for_supported_presets(self):
        for protocol in fleet.SUPPORTED_PROTOCOLS:
            report = statistical_equivalence(
                ScenarioConfig(
                    protocol=protocol,
                    intervals=12,
                    receivers=3,
                    buffers=3,
                    attack_fraction=0.5,
                    loss_probability=0.1,
                ),
                seeds=range(1, 6),
            )
            assert isinstance(report, EquivalenceReport)
            assert report.passes, protocol
            # Exact mirroring: every seed is byte-identical, not just
            # statistically indistinguishable.
            assert report.identical == len(report.seeds)
            assert report.auth_rate_diff.mean == 0.0
            assert report.attack_rate_diff.mean == 0.0

    def test_rejects_empty_seed_set(self):
        with pytest.raises(ConfigurationError):
            statistical_equivalence(ScenarioConfig(), seeds=[])
