"""Vectorized fleet engine: exact parity with the DES, fallbacks, and
the statistical-equivalence harness."""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine import stable_key
from repro.errors import ConfigurationError
from repro.sim import fleet
from repro.sim.fleet import (
    EquivalenceReport,
    run_fleet_scenario,
    statistical_equivalence,
    supports,
)
from repro.sim.scenario import ScenarioConfig, run_scenario


def _assert_identical(config: ScenarioConfig):
    """Both engines at the same seed must agree on every metric."""
    des = run_scenario(dataclasses.replace(config, engine="des"))
    fast = run_fleet_scenario(config)
    assert fast.fleet == des.fleet
    assert fast.sent_authentic == des.sent_authentic
    assert fast.forged_bandwidth_fraction == des.forged_bandwidth_fraction
    assert fast.simulated_seconds == des.simulated_seconds
    return fast


class TestExactParity:
    @pytest.mark.parametrize("protocol", ["dap", "tesla_pp"])
    @pytest.mark.parametrize("attack", [0.0, 0.5])
    def test_clean_channel(self, protocol, attack):
        _assert_identical(
            ScenarioConfig(
                protocol=protocol,
                intervals=15,
                receivers=4,
                buffers=4,
                attack_fraction=attack,
                seed=11,
                engine="vectorized",
            )
        )

    @pytest.mark.parametrize("protocol", ["dap", "tesla_pp"])
    def test_bernoulli_loss(self, protocol):
        _assert_identical(
            ScenarioConfig(
                protocol=protocol,
                intervals=15,
                receivers=4,
                buffers=3,
                attack_fraction=0.5,
                loss_probability=0.2,
                seed=3,
                engine="vectorized",
            )
        )

    def test_gilbert_elliott_loss(self):
        _assert_identical(
            ScenarioConfig(
                protocol="dap",
                intervals=20,
                receivers=5,
                buffers=4,
                attack_fraction=0.5,
                loss_probability=0.2,
                loss_mean_burst=5.0,
                seed=9,
                engine="vectorized",
            )
        )

    def test_heavy_flood_and_small_buffers(self):
        result = _assert_identical(
            ScenarioConfig(
                protocol="dap",
                intervals=20,
                receivers=6,
                buffers=1,
                attack_fraction=0.9,
                loss_probability=0.1,
                seed=4,
                engine="vectorized",
            )
        )
        # The paper's security invariant survives the fast path.
        assert result.fleet.total_forged_accepted == 0

    def test_multiple_packets_per_interval(self):
        _assert_identical(
            ScenarioConfig(
                protocol="dap",
                intervals=12,
                receivers=3,
                buffers=4,
                attack_fraction=0.3,
                packets_per_interval=3,
                disclosure_delay=2,
                seed=21,
                engine="vectorized",
            )
        )

    def test_run_scenario_dispatches_to_fleet(self):
        config = ScenarioConfig(
            protocol="dap",
            intervals=10,
            receivers=3,
            attack_fraction=0.5,
            seed=5,
            engine="vectorized",
        )
        via_dispatch = run_scenario(config)
        direct = run_fleet_scenario(config)
        assert via_dispatch.fleet == direct.fleet
        # The DES path returns live nodes; the fleet path has none.
        assert via_dispatch.nodes == ()


class TestSupportAndFallback:
    def test_supports_only_two_phase_family(self):
        assert supports(ScenarioConfig(protocol="dap"))
        assert supports(ScenarioConfig(protocol="tesla_pp"))
        assert not supports(ScenarioConfig(protocol="tesla"))
        assert not supports(ScenarioConfig(protocol="mu_tesla"))

    def test_direct_call_rejects_unsupported(self):
        with pytest.raises(ConfigurationError):
            run_fleet_scenario(
                ScenarioConfig(protocol="tesla", intervals=8, receivers=2)
            )

    def test_unsupported_protocol_falls_back_without_behaviour_change(self):
        base = ScenarioConfig(
            protocol="tesla", intervals=10, receivers=2, seed=13
        )
        des = run_scenario(base)
        fallback = run_scenario(dataclasses.replace(base, engine="vectorized"))
        assert fallback.fleet == des.fleet
        assert fallback.sent_authentic == des.sent_authentic
        assert fallback.simulated_seconds == des.simulated_seconds

    def test_engine_validated_at_config_time(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(engine="warp")


class TestCacheKeys:
    def test_engines_never_alias_in_the_result_cache(self):
        base = ScenarioConfig(protocol="dap", intervals=10, receivers=2)
        vectorized = dataclasses.replace(base, engine="vectorized")
        assert stable_key(base) != stable_key(vectorized)


class TestStatisticalEquivalence:
    def test_passes_for_supported_presets(self):
        for protocol in fleet.SUPPORTED_PROTOCOLS:
            report = statistical_equivalence(
                ScenarioConfig(
                    protocol=protocol,
                    intervals=12,
                    receivers=3,
                    buffers=3,
                    attack_fraction=0.5,
                    loss_probability=0.1,
                ),
                seeds=range(1, 6),
            )
            assert isinstance(report, EquivalenceReport)
            assert report.passes, protocol
            # Exact mirroring: every seed is byte-identical, not just
            # statistically indistinguishable.
            assert report.identical == len(report.seeds)
            assert report.auth_rate_diff.mean == 0.0
            assert report.attack_rate_diff.mean == 0.0

    def test_rejects_empty_seed_set(self):
        with pytest.raises(ConfigurationError):
            statistical_equivalence(ScenarioConfig(), seeds=[])
