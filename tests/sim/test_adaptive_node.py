"""Tests for the closed-loop adaptive receiver node."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.game.adaptive import AdaptiveDefense, AttackEstimator
from repro.game.parameters import paper_parameters
from repro.protocols.dap import DapReceiver, DapSender
from repro.sim.adaptive import AdaptiveReceiverNode
from repro.sim.attacker import FloodingAttacker, announce_forgery_factory
from repro.sim.events import Simulator
from repro.sim.medium import BroadcastMedium
from repro.sim.nodes import SenderNode
from repro.timesync.intervals import IntervalSchedule
from repro.timesync.sync import LooseTimeSync, SecurityCondition

SEED = b"adaptive-node-seed"


def build_world(attack_p: float, intervals: int, initial_m: int = 2,
                initial_estimate: float = 0.5, every: int = 2, seed: int = 1):
    simulator = Simulator()
    medium = BroadcastMedium(simulator, rng=random.Random(seed))
    schedule = IntervalSchedule(0.0, 1.0)
    condition = SecurityCondition(schedule, LooseTimeSync(0.01), 1)
    sender = DapSender(SEED, intervals + 1, announce_copies=5)
    receiver = DapReceiver(
        sender.chain.commitment, condition, b"local", buffers=initial_m,
        rng=random.Random(seed + 1),
    )
    policy = AdaptiveDefense(
        paper_parameters(p=0.5, m=1),
        AttackEstimator(alpha=0.3, initial=initial_estimate),
    )
    node = AdaptiveReceiverNode("adaptive", simulator, receiver, policy)
    node.attach(medium)
    node.schedule_reconfiguration(schedule, intervals, every=every)
    SenderNode("sender", simulator, medium, sender, schedule, intervals).start()
    if attack_p > 0:
        FloodingAttacker(
            simulator, medium, schedule, announce_forgery_factory(),
            p=attack_p, authentic_copies_per_interval=5, intervals=intervals,
            rng=random.Random(seed + 2),
        ).start()
    return simulator, node, receiver


class TestAdaptiveReceiverNode:
    def test_reconfigurations_recorded(self):
        simulator, node, _receiver = build_world(0.0, intervals=10, every=2)
        simulator.run()
        assert len(node.history) == 5
        assert all(r.buffers >= 1 for r in node.history)

    def test_estimate_tracks_quiet_channel(self):
        simulator, node, _receiver = build_world(
            0.0, intervals=20, initial_estimate=0.9
        )
        simulator.run()
        assert node.history[-1].estimated_p < 0.2

    def test_estimate_tracks_heavy_flood(self):
        simulator, node, _receiver = build_world(
            0.8, intervals=30, initial_estimate=0.1
        )
        simulator.run()
        assert node.history[-1].estimated_p > 0.6

    def test_buffers_grow_under_attack(self):
        simulator, node, receiver = build_world(
            0.8, intervals=30, initial_m=2, initial_estimate=0.1
        )
        simulator.run()
        assert node.history[-1].buffers > 2
        assert receiver.buffers == node.history[-1].buffers

    def test_buffers_shrink_when_quiet(self):
        simulator, node, receiver = build_world(
            0.0, intervals=20, initial_m=10, initial_estimate=0.9
        )
        simulator.run()
        assert node.history[-1].buffers < 10

    def test_existing_reservoirs_unaffected_by_resize(self):
        """Resizing changes future intervals only."""
        sender = DapSender(SEED, 10, announce_copies=5)
        condition = SecurityCondition(
            IntervalSchedule(0.0, 1.0), LooseTimeSync(0.01), 1
        )
        receiver = DapReceiver(
            sender.chain.commitment, condition, b"local", buffers=5,
            rng=random.Random(2),
        )
        for packet in sender.packets_for_interval(1):
            receiver.receive(packet, 0.5)
        assert receiver.buffered_bits == 5 * 56
        receiver.resize_buffers(2)
        for packet in sender.packets_for_interval(2):
            receiver.receive(packet, 1.5)
        # interval 1 keeps 5 records (until housekeeping), interval 2
        # only buffers 2.
        assert receiver.buffered_bits == 5 * 56 + 2 * 56

    def test_resize_validation(self):
        sender = DapSender(SEED, 5)
        condition = SecurityCondition(
            IntervalSchedule(0.0, 1.0), LooseTimeSync(0.01), 1
        )
        receiver = DapReceiver(sender.chain.commitment, condition, b"local")
        with pytest.raises(ConfigurationError):
            receiver.resize_buffers(0)

    def test_schedule_validation(self):
        simulator, node, _receiver = build_world(0.0, intervals=5)
        with pytest.raises(ConfigurationError):
            node.schedule_reconfiguration(IntervalSchedule(0.0, 1.0), 0)
        with pytest.raises(ConfigurationError):
            node.schedule_reconfiguration(IntervalSchedule(0.0, 1.0), 5, every=0)

    def test_security_invariant_holds_throughout(self):
        simulator, node, receiver = build_world(0.9, intervals=40)
        simulator.run()
        assert receiver.stats.forged_accepted == 0
