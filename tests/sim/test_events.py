"""Unit tests for the discrete-event simulator core."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.sim.events import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_in_relative(self):
        sim = Simulator(start=10.0)
        fired = []
        sim.schedule_in(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [12.5]

    def test_past_scheduling_rejected(self):
        sim = Simulator(start=5.0)
        with pytest.raises(SchedulingError):
            sim.schedule(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule_in(1.0, lambda: log.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert log == ["first", "second"]
        assert sim.now == 2.0


class TestRunControl:
    def test_until_is_inclusive(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(2.0, lambda: log.append(2))
        sim.schedule(3.0, lambda: log.append(3))
        sim.run(until=2.0)
        assert log == [1, 2]
        assert sim.now == 2.0

    def test_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_remaining_events_fire_on_next_run(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("late"))
        sim.run(until=1.0)
        assert log == []
        sim.run()
        assert log == ["late"]

    def test_max_events_budget(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: log.append(i))
        assert sim.run(max_events=2) == 2
        assert log == [0, 1]

    def test_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.processed == 2

    def test_bad_max_events(self):
        with pytest.raises(ConfigurationError):
            Simulator().run(max_events=-1)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        assert handle.cancel()
        sim.run()
        assert log == []
        assert handle.cancelled

    def test_cancel_after_fire_fails(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert handle.fired
        assert not handle.cancel()
