"""Unit tests for the indexed per-interval buffer pool."""

from __future__ import annotations

import random

import pytest

from repro.buffers.pool import IndexedBufferPool
from repro.errors import BufferError_, ConfigurationError


@pytest.fixture
def pool(rng):
    return IndexedBufferPool(per_index_capacity=2, item_bits=56, rng=rng)


class TestOfferAndRelease:
    def test_offer_creates_buffer(self, pool):
        assert pool.offer(1, "a").stored
        assert pool.active_indices == [1]

    def test_items_by_index(self, pool):
        pool.offer(1, "a")
        pool.offer(2, "b")
        assert pool.items(1) == ["a"]
        assert pool.items(2) == ["b"]

    def test_items_of_unknown_index_empty(self, pool):
        assert pool.items(9) == []

    def test_release_returns_and_removes(self, pool):
        pool.offer(1, "a")
        assert pool.release(1) == ["a"]
        assert pool.items(1) == []
        assert pool.active_indices == []

    def test_release_unknown_index_is_empty(self, pool):
        assert pool.release(5) == []

    def test_release_older_than(self, pool):
        for index in (1, 2, 3, 4):
            pool.offer(index, index)
        dropped = pool.release_older_than(3)
        assert dropped == 2
        assert pool.active_indices == [3, 4]

    def test_seen_count_per_index(self, pool):
        for _ in range(5):
            pool.offer(1, "x")
        assert pool.seen_count(1) == 5
        assert pool.seen_count(2) == 0

    def test_require_index(self, pool):
        pool.offer(3, "x")
        assert pool.require_index(3) is not None
        with pytest.raises(BufferError_):
            pool.require_index(4)


class TestMemoryAccounting:
    def test_stored_bits(self, pool):
        pool.offer(1, "a")
        pool.offer(1, "b")
        assert pool.stored_bits == 112

    def test_peak_bits_high_water(self, pool):
        pool.offer(1, "a")
        pool.offer(2, "b")
        pool.release(1)
        assert pool.stored_bits == 56
        assert pool.peak_bits == 112

    def test_reset_peak(self, pool):
        pool.offer(1, "a")
        pool.offer(2, "b")
        pool.release(1)
        pool.reset_peak()
        assert pool.peak_bits == 56

    def test_offers_counter(self, pool):
        for i in range(4):
            pool.offer(1, i)
        assert pool.offers == 4


class TestIndexBound:
    def test_max_indices_blocks_new_intervals(self, rng):
        pool = IndexedBufferPool(2, max_indices=2, item_bits=1, rng=rng)
        assert pool.offer(1, "a").stored
        assert pool.offer(2, "b").stored
        assert not pool.offer(3, "c").stored
        assert pool.rejected_no_room == 1

    def test_existing_intervals_still_accept(self, rng):
        pool = IndexedBufferPool(2, max_indices=1, item_bits=1, rng=rng)
        pool.offer(1, "a")
        assert pool.offer(1, "b").stored

    def test_release_frees_slots(self, rng):
        pool = IndexedBufferPool(1, max_indices=1, item_bits=1, rng=rng)
        pool.offer(1, "a")
        pool.release(1)
        assert pool.offer(2, "b").stored


class TestStrategies:
    def test_keep_first_strategy(self, rng):
        pool = IndexedBufferPool(2, item_bits=1, strategy="keep_first", rng=rng)
        for i in range(10):
            pool.offer(1, i)
        assert pool.items(1) == [0, 1]

    def test_reservoir_strategy_replaces(self):
        pool = IndexedBufferPool(
            1, item_bits=1, strategy="reservoir", rng=random.Random(3)
        )
        for i in range(200):
            pool.offer(1, i)
        assert pool.items(1) != [0]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexedBufferPool(1, item_bits=1, strategy="lifo")


class TestRetainProbability:
    def test_full_probability_when_room(self, pool):
        assert pool.retain_probability(1) == 1.0
        pool.offer(1, "a")
        assert pool.retain_probability(1) == 1.0

    def test_m_over_k_when_saturated(self, rng):
        pool = IndexedBufferPool(2, item_bits=1, rng=rng)
        for i in range(4):
            pool.offer(1, i)
        assert pool.retain_probability(1) == pytest.approx(2 / 5)


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            IndexedBufferPool(0, item_bits=1)

    def test_bad_max_indices(self):
        with pytest.raises(ConfigurationError):
            IndexedBufferPool(1, max_indices=0, item_bits=1)

    def test_bad_item_bits(self):
        with pytest.raises(ConfigurationError):
            IndexedBufferPool(1, item_bits=0)
