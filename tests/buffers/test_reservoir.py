"""Unit and property tests for the Algorithm 2 reservoir buffer."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.reservoir import (
    KeepFirstBuffer,
    OfferOutcome,
    ReservoirBuffer,
)
from repro.errors import ConfigurationError


class TestReservoirBasics:
    def test_fills_empty_slots_first(self):
        buf = ReservoirBuffer(3, rng=random.Random(0))
        for i in range(3):
            result = buf.offer(i)
            assert result.outcome is OfferOutcome.STORED_EMPTY
        assert len(buf) == 3

    def test_never_exceeds_capacity(self):
        buf = ReservoirBuffer(4, rng=random.Random(0))
        for i in range(100):
            buf.offer(i)
        assert len(buf) == 4

    def test_seen_count_tracks_offers(self):
        buf = ReservoirBuffer(2, rng=random.Random(0))
        for i in range(7):
            buf.offer(i)
        assert buf.seen_count == 7

    def test_replacement_reports_evicted(self):
        buf = ReservoirBuffer(1, rng=random.Random(1))
        buf.offer("a")
        while True:
            result = buf.offer("b")
            if result.outcome is OfferOutcome.STORED_REPLACED:
                assert result.evicted == "a"
                break

    def test_rejection_has_no_eviction(self):
        buf = ReservoirBuffer(1, rng=random.Random(0))
        buf.offer("a")
        rejected = [r for r in (buf.offer("b") for _ in range(50)) if not r.stored]
        assert rejected
        assert all(r.evicted is None for r in rejected)

    def test_clear_resets(self):
        buf = ReservoirBuffer(2, rng=random.Random(0))
        for i in range(5):
            buf.offer(i)
        buf.clear()
        assert len(buf) == 0
        assert buf.seen_count == 0

    def test_contains_and_iter(self):
        buf = ReservoirBuffer(3, rng=random.Random(0))
        buf.offer("x")
        assert "x" in buf
        assert list(buf) == ["x"]

    def test_items_snapshot_is_copy(self):
        buf = ReservoirBuffer(3, rng=random.Random(0))
        buf.offer("x")
        items = buf.items
        items.append("y")
        assert len(buf) == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ReservoirBuffer(0)


class TestReservoirStatistics:
    def test_keep_probability_is_m_over_k(self):
        """After n offers every item is retained with probability m/n."""
        m, n, trials = 3, 12, 4000
        hits = Counter()
        for trial in range(trials):
            buf = ReservoirBuffer(m, rng=random.Random(trial))
            for i in range(n):
                buf.offer(i)
            for item in buf:
                hits[item] += 1
        expected = trials * m / n
        for i in range(n):
            assert hits[i] == pytest.approx(expected, rel=0.15)

    def test_survival_of_single_authentic_matches_1_minus_p_m(self):
        """With forged fraction p, one authentic copy survives with
        probability close to 1 - p^m (hypergeometric, n finite)."""
        m, forged, trials = 3, 36, 3000
        total = forged + 4  # 4 authentic copies: p = 0.9
        survived = 0
        for trial in range(trials):
            buf = ReservoirBuffer(m, rng=random.Random(trial))
            items = ["f"] * forged + ["a"] * 4
            random.Random(trial + 10 ** 6).shuffle(items)
            for item in items:
                buf.offer(item)
            if "a" in buf:
                survived += 1
        # exact hypergeometric: 1 - C(36,3)/C(40,3)
        from math import comb

        expected = 1.0 - comb(forged, m) / comb(total, m)
        assert survived / trials == pytest.approx(expected, abs=0.04)

    def test_order_insensitive(self):
        """Front-loaded floods do not bias the reservoir (unlike keep-first)."""
        m, trials = 2, 3000
        survived_front = survived_back = 0
        for trial in range(trials):
            front = ReservoirBuffer(m, rng=random.Random(trial))
            for item in ["f"] * 8 + ["a"] * 2:
                front.offer(item)
            survived_front += "a" in front
            back = ReservoirBuffer(m, rng=random.Random(trial + 10 ** 6))
            for item in ["a"] * 2 + ["f"] * 8:
                back.offer(item)
            survived_back += "a" in back
        assert survived_front / trials == pytest.approx(
            survived_back / trials, abs=0.05
        )

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=2 ** 31),
    )
    @settings(max_examples=60)
    def test_size_invariant(self, capacity, offers, seed):
        buf = ReservoirBuffer(capacity, rng=random.Random(seed))
        for i in range(offers):
            buf.offer(i)
        assert len(buf) == min(capacity, offers)
        assert buf.seen_count == offers

    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(st.integers(), min_size=0, max_size=40),
        st.integers(min_value=0, max_value=2 ** 31),
    )
    @settings(max_examples=60)
    def test_contents_are_subset_of_offers(self, capacity, items, seed):
        buf = ReservoirBuffer(capacity, rng=random.Random(seed))
        for item in items:
            buf.offer(item)
        for held in buf:
            assert held in items


class TestKeepFirstBuffer:
    def test_keeps_first_m(self):
        buf = KeepFirstBuffer(3)
        for i in range(10):
            buf.offer(i)
        assert buf.items == [0, 1, 2]

    def test_rejects_after_full(self):
        buf = KeepFirstBuffer(2)
        buf.offer("a")
        buf.offer("b")
        assert buf.offer("c").outcome is OfferOutcome.REJECTED

    def test_front_loaded_flood_starves_authentic(self):
        """The vulnerability the reservoir rule fixes."""
        buf = KeepFirstBuffer(3)
        for item in ["f"] * 3 + ["a"] * 5:
            buf.offer(item)
        assert "a" not in buf

    def test_seen_count(self):
        buf = KeepFirstBuffer(2)
        for i in range(5):
            buf.offer(i)
        assert buf.seen_count == 5


class _SubclassedRandom(random.Random):
    """Forces offer_many onto its generic (randrange-based) branch."""


class TestOfferMany:
    """offer_many must be state- and draw-identical to per-item offer."""

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        offers=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_draw_identical_to_sequential_offers(self, capacity, offers, seed):
        sequential = ReservoirBuffer(capacity, rng=random.Random(seed))
        stored_seq = 0
        for item in range(offers):
            if sequential.offer(item).stored:
                stored_seq += 1
        batched = ReservoirBuffer(capacity, rng=random.Random(seed))
        stored_many = batched.offer_many(range(offers))
        assert batched.items == sequential.items
        assert batched.seen_count == sequential.seen_count
        assert stored_many == stored_seq
        # The RNG streams advanced identically: the *next* draw agrees.
        assert batched._rng.random() == sequential._rng.random()

    def test_generic_rng_branch_is_also_draw_identical(self):
        """A Random subclass skips the inlined getrandbits fast path;
        the randrange fallback must consume the identical stream."""
        for seed in (7, 11, 23):
            fast = ReservoirBuffer(3, rng=random.Random(seed))
            generic = ReservoirBuffer(3, rng=_SubclassedRandom(seed))
            fast.offer_many(range(100))
            generic.offer_many(range(100))
            assert fast.items == generic.items
            assert fast.seen_count == generic.seen_count
            assert fast._rng.random() == generic._rng.random()

    def test_resumes_mid_stream(self):
        """Mixing offer and offer_many on one buffer stays identical to
        a pure offer sequence."""
        mixed = ReservoirBuffer(2, rng=random.Random(5))
        pure = ReservoirBuffer(2, rng=random.Random(5))
        for item in range(10):
            mixed.offer(item)
            pure.offer(item)
        mixed.offer_many(range(10, 50))
        for item in range(10, 50):
            pure.offer(item)
        assert mixed.items == pure.items
        assert mixed.seen_count == pure.seen_count

    def test_keep_first_default_delegation(self):
        buf = KeepFirstBuffer(3)
        assert buf.offer_many(range(10)) == 3
        assert buf.items == [0, 1, 2]
        assert buf.seen_count == 10

    def test_empty_iterable(self):
        buf = ReservoirBuffer(2, rng=random.Random(1))
        assert buf.offer_many([]) == 0
        assert buf.seen_count == 0
