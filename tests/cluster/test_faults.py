"""Fault-spec parsing and schedule bookkeeping."""

from __future__ import annotations

import pytest

from repro.cluster.faults import (
    FAULT_ACTIONS,
    FaultEvent,
    FaultSchedule,
    parse_fault,
)
from repro.errors import ConfigurationError


def test_parse_loss_spec():
    event = parse_fault("120:loss=0.4")
    assert event.at == 120.0
    assert event.action == "loss"
    assert event.value == 0.4


def test_parse_worker_spec():
    event = parse_fault("300:kill-worker=1")
    assert event.action == "kill-worker"
    assert event.worker == 1


@pytest.mark.parametrize(
    "spec",
    [
        "loss=0.4",  # no time
        "120:loss",  # no value
        "abc:loss=0.4",  # non-numeric time
        "120:loss=high",  # non-numeric value
        "120:reboot=1",  # unknown action
        "-5:loss=0.4",  # negative time
        "120:loss=1.0",  # loss out of range
        "120:kill-worker=1.5",  # fractional worker index
        "120:kill-worker=-1",  # negative worker index
    ],
)
def test_bad_specs_raise_configuration_error(spec):
    with pytest.raises(ConfigurationError):
        parse_fault(spec)


def test_every_documented_action_parses():
    specs = {
        "loss": "1:loss=0.2",
        "kill-worker": "1:kill-worker=0",
        "partition-worker": "1:partition-worker=0",
        "heal-worker": "1:heal-worker=0",
        "restart-worker": "1:restart-worker=0",
    }
    assert set(specs) == set(FAULT_ACTIONS)
    for action, spec in specs.items():
        assert parse_fault(spec).action == action


def test_schedule_fires_in_time_order():
    schedule = FaultSchedule.from_specs(
        ["30:kill-worker=1", "10:loss=0.2", "20:partition-worker=0"]
    )
    assert len(schedule) == 3
    assert [event.at for event in schedule.pending] == [10.0, 20.0, 30.0]
    assert [event.action for event in schedule.due(25.0)] == [
        "loss",
        "partition-worker",
    ]
    assert len(schedule) == 1
    assert schedule.due(25.0) == []  # already popped
    assert [event.action for event in schedule.due(30.0)] == ["kill-worker"]
    assert len(schedule) == 0


def test_fault_event_is_frozen():
    event = FaultEvent(at=1.0, action="loss", value=0.1)
    with pytest.raises(AttributeError):
        event.value = 0.2  # type: ignore[misc]
