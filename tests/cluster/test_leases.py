"""Lease-table semantics, driven with arithmetic time (no sleeps)."""

from __future__ import annotations

import pytest

from repro.cluster.leases import LeaseTable
from repro.errors import ClusterError


def test_grant_and_holder():
    table = LeaseTable()
    lease = table.grant("r0-s0", worker_id=1, ttl=2.0, now=10.0)
    assert lease.expires_at == 12.0
    assert table.holder("r0-s0") == 1
    assert table.holder("r0-s1") == -1
    assert "r0-s0" in table
    assert len(table) == 1


def test_double_grant_raises():
    table = LeaseTable()
    table.grant("r0-s0", worker_id=0, ttl=2.0, now=0.0)
    with pytest.raises(ClusterError, match="already leased"):
        table.grant("r0-s0", worker_id=1, ttl=2.0, now=0.5)


def test_renew_extends_only_reported_active_tasks():
    """A worker whose soak thread died keeps heartbeating but stops
    listing the task — that lease must still expire."""
    table = LeaseTable()
    table.grant("alive", worker_id=0, ttl=1.0, now=0.0)
    table.grant("wedged", worker_id=0, ttl=1.0, now=0.0)
    renewed = table.renew(0, ["alive"], ttl=1.0, now=0.9)
    assert renewed == 1
    expired = table.expire(now=1.5)
    assert [lease.task_id for lease in expired] == ["wedged"]
    assert table.holder("alive") == 0


def test_renew_ignores_other_workers_leases():
    table = LeaseTable()
    table.grant("t", worker_id=0, ttl=1.0, now=0.0)
    assert table.renew(1, ["t"], ttl=1.0, now=0.5) == 0
    assert table.expire(now=1.0) != []


def test_release_is_idempotent():
    table = LeaseTable()
    table.grant("t", worker_id=0, ttl=1.0, now=0.0)
    assert table.release("t") is True
    assert table.release("t") is False
    assert len(table) == 0


def test_expire_pops_everything_past_deadline():
    table = LeaseTable()
    for index in range(3):
        table.grant(f"t{index}", worker_id=index, ttl=1.0 + index, now=0.0)
    expired = table.expire(now=2.0)
    assert sorted(lease.task_id for lease in expired) == ["t0", "t1"]
    assert len(table) == 1
    assert table.holder("t2") == 2


def test_held_by_lists_a_workers_leases():
    table = LeaseTable()
    table.grant("a", worker_id=0, ttl=5.0, now=0.0)
    table.grant("b", worker_id=0, ttl=5.0, now=0.0)
    table.grant("c", worker_id=1, ttl=5.0, now=0.0)
    assert sorted(lease.task_id for lease in table.held_by(0)) == ["a", "b"]
    assert [lease.task_id for lease in table.held_by(2)] == []
