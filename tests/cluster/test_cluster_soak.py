"""End-to-end cluster soaks: real coordinator, real worker processes.

These tests spawn actual ``python -m repro.cluster.worker`` daemons
over localhost TCP, so they pin the acceptance criteria of the
subsystem itself:

* a cluster soak merges to the *same report* a single-process
  ``run_loadtest`` produces at equal seeds (the parity anchor);
* a SIGKILLed worker's leases expire and its shards re-lease to the
  survivor, with the merged result still exact;
* backpressure demonstrably throttles dispatch at ``max_inflight``;
* metric snapshots land in ``metrics.jsonl`` at the configured
  cadences.

Every run carries ``max_runtime=60``: the coordinator aborts itself
long before any CI-level timeout, so a wedge fails loudly with the
unfinished task ids instead of hanging the suite.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    parse_fault,
    read_metrics,
    run_cluster_soak,
)
from repro.net.harness import run_loadtest
from repro.scenarios import get_scenario

#: Report fields that are functions of the scenario alone (everything
#: except wall-clock artifacts: wall_seconds, packets_per_second and
#: the latency percentiles).
STABLE_FIELDS = (
    "transport",
    "protocol",
    "receivers",
    "shards",
    "intervals",
    "sent_authentic",
    "authentication_rate",
    "attack_success_rate",
    "forged_accepted",
    "peak_buffer_bits",
    "packets_sent",
    "packets_injected",
    "datagrams_delivered",
    "datagrams_dropped",
    "datagrams_duplicated",
    "datagrams_reordered",
    "malformed",
    "latency_samples",
    "simulated_seconds",
)


@pytest.fixture(scope="module")
def baseline():
    return get_scenario("crowdsensing-baseline-t0").config


def assert_stable_fields_match(report, reference):
    for field_name in STABLE_FIELDS:
        assert getattr(report, field_name) == getattr(
            reference, field_name
        ), field_name


def test_two_worker_soak_matches_run_loadtest(tmp_path, baseline):
    """The parity anchor: cluster-merged == single-process loadtest."""
    metrics_path = tmp_path / "metrics.jsonl"
    config = ClusterConfig(
        scenario=baseline,
        workers=2,
        shards=2,
        heartbeat_interval=0.1,
        metrics_interval=0.25,
        metrics_path=str(metrics_path),
        task_stall=0.3,
        max_runtime=60.0,
    )
    result = run_cluster_soak(config)

    reference = run_loadtest(config.loadtest_config())
    assert_stable_fields_match(result.report, reference)

    assert result.tasks == 2
    assert result.releases == 0
    assert result.duplicate_results == 0
    assert result.reconciliation is not None
    assert result.reconciliation.ok, result.reconciliation.mismatches
    assert result.reconciliation.checked == 2

    # Metric snapshots at the configured cadences: worker records ride
    # heartbeats, coordinator aggregates ride metrics_interval.
    records = read_metrics(metrics_path)
    workers = [r for r in records if r["kind"] == "worker"]
    coordinators = [r for r in records if r["kind"] == "coordinator"]
    assert len(workers) >= 2
    assert len(coordinators) >= 2
    assert {r["worker"] for r in workers} == {0, 1}
    for record in workers:
        assert record["inflight"] <= config.max_inflight
        assert "counters" in record["perf"]
    final = coordinators[-1]
    assert final["total"] == 2
    assert final["completed"] <= 2


def test_worker_kill_expires_leases_and_releases(tmp_path, baseline):
    """SIGKILL a worker mid-task: its leases expire, the shards
    re-lease to the survivor, and the merged report is still exact."""
    metrics_path = tmp_path / "metrics.jsonl"
    config = ClusterConfig(
        scenario=baseline,
        workers=2,
        shards=4,
        heartbeat_interval=0.2,
        lease_ttl=1.0,
        task_stall=3.0,
        faults=(parse_fault("1.5:kill-worker=1"),),
        metrics_path=str(metrics_path),
        max_runtime=60.0,
    )
    result = run_cluster_soak(config)

    assert result.releases > 0  # the victim held leases when it died
    assert result.tasks == 4
    assert result.reconciliation is not None
    assert result.reconciliation.ok, result.reconciliation.mismatches

    # Re-leased shards re-run at the same seeds, so the merged report
    # still equals the single-process reference.
    reference = run_loadtest(config.loadtest_config())
    assert_stable_fields_match(result.report, reference)

    records = read_metrics(metrics_path)
    kinds = {record["kind"] for record in records}
    assert "fault" in kinds  # the kill event was logged
    assert "release" in kinds  # so was each expired lease
    fault = next(r for r in records if r["kind"] == "fault")
    assert fault["action"] == "kill-worker"


def test_backpressure_throttles_dispatch(tmp_path, baseline):
    """One worker at max_inflight=1 with three shards: the dispatch
    loop must demonstrably wait, and the worker must never report more
    in-flight work than the bound."""
    metrics_path = tmp_path / "metrics.jsonl"
    config = ClusterConfig(
        scenario=baseline,
        workers=1,
        shards=3,
        max_inflight=1,
        heartbeat_interval=0.1,
        task_stall=0.4,
        metrics_path=str(metrics_path),
        max_runtime=60.0,
    )
    result = run_cluster_soak(config)

    assert result.backpressure_waits > 0
    assert result.tasks == 3
    assert result.reconciliation is not None
    assert result.reconciliation.ok, result.reconciliation.mismatches

    workers = [
        r for r in read_metrics(metrics_path) if r["kind"] == "worker"
    ]
    assert workers
    assert max(record["inflight"] for record in workers) <= 1


def test_multi_round_soak_ladders_seeds(baseline):
    """rounds=2 doubles the task count; the merged report counts every
    completed shard and reconciliation checks each one."""
    config = ClusterConfig(
        scenario=baseline,
        workers=2,
        shards=2,
        rounds=2,
        max_runtime=60.0,
    )
    result = run_cluster_soak(config)
    assert result.tasks == 4
    assert result.report.shards == 4
    assert result.reconciliation is not None
    assert result.reconciliation.checked == 4
    assert result.reconciliation.ok, result.reconciliation.mismatches


def test_vectorized_engine_soak(baseline):
    """engine='vectorized': workers predict via the fleet engine; the
    merged report still matches the equivalent loadtest run."""
    config = ClusterConfig(
        scenario=baseline,
        workers=1,
        shards=2,
        engine="vectorized",
        max_runtime=60.0,
    )
    result = run_cluster_soak(config)
    assert result.reconciliation is not None
    assert result.reconciliation.ok, result.reconciliation.mismatches
    assert all(
        task.engine_used == "vectorized"
        for task in result.reconciliation.tasks
    )
    reference = run_loadtest(config.loadtest_config())
    assert result.report.sent_authentic == reference.sent_authentic
    assert (
        result.report.authentication_rate == reference.authentication_rate
    )
    assert result.report.peak_buffer_bits == reference.peak_buffer_bits
