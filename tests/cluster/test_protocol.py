"""Wire protocol: codecs round-trip, streams frame, garbage raises."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.cluster.protocol import (
    MESSAGE_TYPES,
    MessageStream,
    decode_scenario,
    decode_soak,
    encode_scenario,
    encode_soak,
)
from repro.errors import ClusterError
from repro.net.harness import run_loopback_soak
from repro.scenarios import get_scenario


@pytest.fixture(scope="module")
def baseline():
    return get_scenario("crowdsensing-baseline-t0").config


@pytest.fixture(scope="module")
def soak(baseline):
    return run_loopback_soak(baseline)


def test_scenario_round_trip(baseline):
    assert decode_scenario(encode_scenario(baseline)) == baseline


def test_decode_scenario_rejects_garbage():
    with pytest.raises(ClusterError):
        decode_scenario("not-a-dict")  # type: ignore[arg-type]
    with pytest.raises(ClusterError):
        decode_scenario({"no_such_field": 1})


def test_soak_round_trip(soak):
    decoded = decode_soak(encode_soak(soak))
    assert decoded == soak


def test_soak_round_trip_survives_json(soak):
    """The encoded form must be plain JSON types end to end."""
    import json

    document = json.loads(json.dumps(encode_soak(soak)))
    assert decode_soak(document) == soak


def test_decode_soak_rejects_missing_fields(soak):
    document = encode_soak(soak)
    document.pop("nodes")
    with pytest.raises(ClusterError, match="malformed soak"):
        decode_soak(document)


def _stream_pair():
    left, right = socket.socketpair()
    return MessageStream(left), MessageStream(right)


def test_message_stream_round_trip():
    a, b = _stream_pair()
    try:
        a.send({"type": "heartbeat", "worker_id": 3, "active": ["r0-s1"]})
        message = b.recv()
        assert message == {
            "type": "heartbeat",
            "worker_id": 3,
            "active": ["r0-s1"],
        }
    finally:
        a.close()
        b.close()


def test_message_stream_frames_coalesced_sends():
    """Two messages in one TCP segment still arrive as two messages."""
    a, b = _stream_pair()
    try:
        a.send({"type": "nack", "task_id": "r0-s0"})
        a.send({"type": "shutdown"})
        assert b.recv()["type"] == "nack"
        assert b.recv()["type"] == "shutdown"
    finally:
        a.close()
        b.close()


def test_message_stream_returns_none_at_eof():
    a, b = _stream_pair()
    a.close()
    try:
        assert b.recv() is None
    finally:
        b.close()


def test_message_stream_rejects_unknown_type_and_garbage():
    left, right = socket.socketpair()
    stream = MessageStream(right)
    try:
        left.sendall(b'{"type":"warp"}\n')
        with pytest.raises(ClusterError, match="unknown cluster message"):
            stream.recv()
        left.sendall(b"not json\n")
        with pytest.raises(ClusterError, match="malformed cluster message"):
            stream.recv()
        left.sendall(b'["no","type"]\n')
        with pytest.raises(ClusterError, match="'type' key"):
            stream.recv()
    finally:
        left.close()
        stream.close()


def test_message_stream_partial_line_at_eof_raises():
    left, right = socket.socketpair()
    stream = MessageStream(right)
    try:
        left.sendall(b'{"type":"heartbeat"')  # no newline
        left.close()
        with pytest.raises(ClusterError, match="mid-message"):
            stream.recv()
    finally:
        stream.close()


def test_send_is_thread_safe():
    """Heartbeat + soak threads share one worker stream; interleaved
    sends must never corrupt framing."""
    a, b = _stream_pair()
    count = 50

    def pump(worker_id):
        for _ in range(count):
            a.send({"type": "heartbeat", "worker_id": worker_id})

    threads = [
        threading.Thread(target=pump, args=(worker_id,))
        for worker_id in range(4)
    ]
    try:
        for thread in threads:
            thread.start()
        received = [b.recv() for _ in range(4 * count)]
        assert all(msg["type"] == "heartbeat" for msg in received)
        for worker_id in range(4):
            assert (
                sum(1 for msg in received if msg["worker_id"] == worker_id)
                == count
            )
    finally:
        for thread in threads:
            thread.join()
        a.close()
        b.close()


def test_message_types_cover_the_protocol():
    assert set(MESSAGE_TYPES) == {
        "register",
        "welcome",
        "lease",
        "nack",
        "heartbeat",
        "result",
        "task-failed",
        "shutdown",
    }
