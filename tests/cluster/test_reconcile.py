"""Reconciliation: soak vs fleet-engine prediction, zero tolerance."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster.reconcile import (
    NODE_FIELDS,
    reconcile_soaks,
    reconcile_task,
)
from repro.net.harness import run_loopback_soak
from repro.scenarios import get_scenario


@pytest.fixture(scope="module")
def baseline():
    return get_scenario("crowdsensing-baseline-t0").config


@pytest.fixture(scope="module")
def soak(baseline):
    return run_loopback_soak(baseline)


def test_real_soak_reconciles_exactly(baseline, soak):
    verdict = reconcile_task("r0-s0", baseline, soak)
    assert verdict.ok, verdict.mismatches
    assert verdict.engine_used in ("vectorized", "des-fallback")


def test_wrong_scenario_is_caught(baseline, soak):
    """A soak attributed to a different population must not reconcile."""
    shrunk = replace(baseline, receivers=baseline.receivers - 1)
    verdict = reconcile_task("r0-s0", shrunk, soak)
    assert not verdict.ok
    assert any("r0-s0" in mismatch for mismatch in verdict.mismatches)


def test_corrupted_tally_is_caught(baseline, soak):
    doctored = replace(
        soak, sent_authentic=soak.sent_authentic + 1
    )
    verdict = reconcile_task("r0-s0", baseline, doctored)
    assert not verdict.ok
    assert "sent_authentic" in verdict.mismatches[0]


def test_tolerance_absorbs_small_node_drift(baseline, soak):
    """Tolerance applies to the per-node tallies (sent_authentic stays
    exact — the sender side is never noisy)."""
    nodes = list(soak.fleet.nodes)
    nodes[0] = replace(nodes[0], authenticated=nodes[0].authenticated - 1)
    doctored = replace(
        soak, fleet=replace(soak.fleet, nodes=tuple(nodes))
    )
    strict = reconcile_task("r0-s0", baseline, doctored)
    assert not strict.ok
    relaxed = reconcile_task("r0-s0", baseline, doctored, tolerance=1)
    assert relaxed.ok, relaxed.mismatches


def test_reconcile_soaks_aggregates(baseline, soak):
    shrunk = replace(baseline, receivers=baseline.receivers - 1)
    result = reconcile_soaks(
        [("good", baseline, soak), ("bad", shrunk, soak)]
    )
    assert result.checked == 2
    assert not result.ok
    verdicts = {task.task_id: task.ok for task in result.tasks}
    assert verdicts == {"good": True, "bad": False}
    assert all("bad" in mismatch for mismatch in result.mismatches)


def test_node_fields_cover_every_tally():
    from repro.sim.metrics import NodeSummary
    import dataclasses

    tallies = {
        f.name for f in dataclasses.fields(NodeSummary) if f.name != "name"
    }
    assert set(NODE_FIELDS) == tallies
