"""MetricsLog: tail-able JSON lines, thread-safe, strict reader."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cluster.metrics import MetricsLog, read_metrics
from repro.errors import ClusterError


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "metrics.jsonl"
    with MetricsLog(path) as log:
        log.write({"kind": "worker", "worker": 0, "inflight": 1})
        log.write({"kind": "coordinator", "pending": 3})
    records = read_metrics(path)
    assert records == [
        {"kind": "worker", "worker": 0, "inflight": 1},
        {"kind": "coordinator", "pending": 3},
    ]


def test_each_record_is_one_flushed_line(tmp_path):
    """tail -f semantics: every record is complete on disk the moment
    write() returns, one line each."""
    path = tmp_path / "metrics.jsonl"
    log = MetricsLog(path)
    log.write({"kind": "fault", "action": "loss"})
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["action"] == "loss"
    log.close()


def test_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "metrics.jsonl"
    with MetricsLog(path) as log:
        log.write({"kind": "worker"})
    assert read_metrics(path) == [{"kind": "worker"}]


def test_late_write_after_close_is_dropped(tmp_path):
    """A straggler heartbeat after shutdown must not crash the handler
    thread (nor land in the file)."""
    path = tmp_path / "metrics.jsonl"
    log = MetricsLog(path)
    log.write({"kind": "worker"})
    log.close()
    log.write({"kind": "worker", "late": True})  # no error
    log.close()  # idempotent
    assert read_metrics(path) == [{"kind": "worker"}]


def test_concurrent_writers_never_interleave(tmp_path):
    path = tmp_path / "metrics.jsonl"
    log = MetricsLog(path)
    count = 200

    def pump(writer):
        for index in range(count):
            log.write({"kind": "worker", "writer": writer, "index": index})

    threads = [
        threading.Thread(target=pump, args=(writer,)) for writer in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    log.close()
    records = read_metrics(path)  # raises on any torn line
    assert len(records) == 4 * count
    for writer in range(4):
        seen = [r["index"] for r in records if r["writer"] == writer]
        assert seen == sorted(seen) == list(range(count))


def test_read_metrics_rejects_malformed_lines(tmp_path):
    path = tmp_path / "metrics.jsonl"
    path.write_text('{"kind":"worker"}\nnot json\n', encoding="utf-8")
    with pytest.raises(ClusterError, match=":2:"):
        read_metrics(path)


def test_read_metrics_rejects_non_object_lines(tmp_path):
    path = tmp_path / "metrics.jsonl"
    path.write_text("[1,2,3]\n", encoding="utf-8")
    with pytest.raises(ClusterError, match="not an object"):
        read_metrics(path)


def test_read_metrics_skips_blank_lines(tmp_path):
    path = tmp_path / "metrics.jsonl"
    path.write_text('\n{"kind":"worker"}\n\n', encoding="utf-8")
    assert read_metrics(path) == [{"kind": "worker"}]
