"""ClusterConfig validation and its LoadTestConfig equivalence."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import ConfigurationError
from repro.scenarios import get_scenario


@pytest.fixture(scope="module")
def baseline():
    return get_scenario("crowdsensing-baseline-t0").config


def test_defaults_validate(baseline):
    config = ClusterConfig(scenario=baseline)
    assert config.workers == 2
    assert config.shards == 2
    assert config.reconcile is True


@pytest.mark.parametrize(
    "overrides, match",
    [
        ({"workers": 0}, "workers"),
        ({"shards": 0}, "shards"),
        ({"rounds": 0}, "rounds"),
        ({"engine": "quantum"}, "engine"),
        ({"heartbeat_interval": 0.0}, "heartbeat_interval"),
        ({"heartbeat_interval": 2.0, "lease_ttl": 1.0}, "lease_ttl"),
        ({"metrics_interval": 0.0}, "metrics_interval"),
        ({"max_inflight": 0}, "max_inflight"),
        ({"max_rss_mb": 0.0}, "max_rss_mb"),
        ({"max_attempts": 0}, "max_attempts"),
        ({"max_runtime": 0.0}, "max_runtime"),
        ({"task_stall": -1.0}, "task_stall"),
        ({"tolerance": -1}, "tolerance"),
    ],
)
def test_validation_names_the_bad_field(baseline, overrides, match):
    with pytest.raises(ConfigurationError, match=match):
        ClusterConfig(scenario=baseline, **overrides)


def test_shards_bounded_by_receivers(baseline):
    ClusterConfig(scenario=baseline, shards=baseline.receivers)
    with pytest.raises(ConfigurationError, match="shards"):
        ClusterConfig(scenario=baseline, shards=baseline.receivers + 1)


def test_rejects_non_testbed_protocols(baseline):
    scenario = replace(baseline, protocol="tesla")
    with pytest.raises(ConfigurationError, match="protocol"):
        ClusterConfig(scenario=scenario)


def test_loadtest_config_mirrors_the_scenario(baseline):
    config = ClusterConfig(scenario=baseline, shards=3, engine="vectorized")
    loadtest = config.loadtest_config()
    assert loadtest.transport == "loopback"
    assert loadtest.protocol == baseline.protocol
    assert loadtest.receivers == baseline.receivers
    assert loadtest.shards == 3
    assert loadtest.intervals == baseline.intervals
    assert loadtest.buffers == baseline.buffers
    assert loadtest.seed == baseline.seed
    assert loadtest.engine == "vectorized"
    assert loadtest.loss_probability == baseline.loss_probability
    assert loadtest.attack_fraction == baseline.attack_fraction


def test_loadtest_config_shards_match_cluster_plan(baseline):
    """The derived LoadTestConfig shards the same population the same
    way the cluster plans it — the merge path depends on this."""
    from repro.cluster.shards import plan_tasks

    config = ClusterConfig(scenario=baseline, shards=2)
    loadtest = config.loadtest_config()
    tasks = plan_tasks(baseline, shards=2, engine=config.engine)
    for task in tasks:
        shard_scenario = loadtest.scenario_for_shard(task.shard)
        assert shard_scenario.receivers == task.scenario.receivers
        assert shard_scenario.seed == task.scenario.seed
