"""Shard planning: the task list is the whole contract."""

from __future__ import annotations

import pytest

from repro.cluster.shards import ShardTask, plan_tasks
from repro.errors import ConfigurationError
from repro.net.harness import shard_sizes
from repro.scenarios import get_scenario


@pytest.fixture(scope="module")
def baseline():
    return get_scenario("crowdsensing-baseline-t0").config


def test_plan_tasks_single_round_matches_shard_sizes(baseline):
    tasks = plan_tasks(baseline, shards=2)
    assert [t.task_id for t in tasks] == ["r0-s0", "r0-s1"]
    sizes = shard_sizes(baseline.receivers, 2)
    assert [t.scenario.receivers for t in tasks] == sizes
    assert sum(t.scenario.receivers for t in tasks) == baseline.receivers


def test_plan_tasks_seed_ladder_matches_loadtest(baseline):
    """Round r shard s runs at seed base + r*shards + s — at rounds=1
    the exact ladder LoadTestConfig.scenario_for_shard uses."""
    tasks = plan_tasks(baseline, shards=3, rounds=2)
    assert len(tasks) == 6
    for task in tasks:
        expected = baseline.seed + task.round_index * 3 + task.shard
        assert task.scenario.seed == expected
    assert len({t.scenario.seed for t in tasks}) == 6


def test_plan_tasks_round_major_ordering(baseline):
    tasks = plan_tasks(baseline, shards=2, rounds=2)
    assert [t.task_id for t in tasks] == [
        "r0-s0",
        "r0-s1",
        "r1-s0",
        "r1-s1",
    ]


def test_plan_tasks_pins_engine(baseline):
    for engine in ("des", "vectorized"):
        tasks = plan_tasks(baseline, shards=2, engine=engine)
        assert all(t.scenario.engine == engine for t in tasks)


def test_plan_tasks_rejects_bad_shard_counts(baseline):
    with pytest.raises(ConfigurationError):
        plan_tasks(baseline, shards=0)
    with pytest.raises(ConfigurationError):
        plan_tasks(baseline, shards=baseline.receivers + 1)


def test_shard_task_is_frozen(baseline):
    task = plan_tasks(baseline, shards=1)[0]
    assert isinstance(task, ShardTask)
    with pytest.raises(AttributeError):
        task.shard = 9  # type: ignore[misc]
