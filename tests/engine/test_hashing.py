"""Stable content addressing — the cache's correctness foundation."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.engine import CODE_VERSION, stable_key
from repro.errors import CacheKeyError, ReproError
from repro.game.parameters import GameParameters, paper_parameters
from repro.sim.scenario import ScenarioConfig


class TestDeterminism:
    def test_equal_values_equal_keys(self):
        assert stable_key((1, "a", 2.5)) == stable_key((1, "a", 2.5))

    def test_key_is_sha256_hex(self):
        key = stable_key("anything")
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_known_structures_differ(self):
        values = [None, 0, 1, True, False, 0.0, 1.0, "", "0", b"0", (), (0,), [0]]
        keys = [stable_key(v) for v in values]
        assert len(set(keys)) == len(values)


class TestTypeTagging:
    def test_bool_is_not_int(self):
        assert stable_key(True) != stable_key(1)
        assert stable_key(False) != stable_key(0)

    def test_int_is_not_float(self):
        assert stable_key(1) != stable_key(1.0)

    def test_str_is_not_bytes(self):
        assert stable_key("ab") != stable_key(b"ab")

    def test_tuple_is_not_list(self):
        assert stable_key((1, 2)) != stable_key([1, 2])

    def test_negative_zero_distinct(self):
        assert stable_key(0.0) != stable_key(-0.0)

    def test_nan_is_stable(self):
        assert stable_key(float("nan")) == stable_key(float("nan"))

    def test_concatenation_cannot_alias(self):
        assert stable_key(("ab", "c")) != stable_key(("a", "bc"))
        assert stable_key((b"ab", b"c")) != stable_key((b"a", b"bc"))


class TestContainers:
    def test_dict_order_insensitive(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})

    def test_dict_values_matter(self):
        assert stable_key({"a": 1}) != stable_key({"a": 2})

    def test_set_order_insensitive(self):
        assert stable_key({3, 1, 2}) == stable_key({1, 2, 3})
        assert stable_key(frozenset((1, 2))) == stable_key(frozenset((2, 1)))

    def test_nested(self):
        value = {"grid": [(0.1, 2), (0.2, 3)], "tags": {"a", "b"}}
        assert stable_key(value) == stable_key(
            {"tags": {"b", "a"}, "grid": [(0.1, 2), (0.2, 3)]}
        )


class TestNumpy:
    def test_scalar_matches_python_value(self):
        assert stable_key(np.float64(1.5)) == stable_key(1.5)
        assert stable_key(np.int64(7)) == stable_key(7)

    def test_array_content_addressed(self):
        a = np.arange(6, dtype=float)
        assert stable_key(a) == stable_key(a.copy())

    def test_array_dtype_and_shape_matter(self):
        a = np.arange(6)
        assert stable_key(a) != stable_key(a.astype(float))
        assert stable_key(a) != stable_key(a.reshape(2, 3))

    def test_byteorder_does_not_alias(self):
        """'>f8' and '<f8' arrays with equal values must share a key —
        tobytes() differs between them, so without normalisation the
        same logical array would content-address differently."""
        little = np.array([1.5, -2.25, 3.0], dtype="<f8")
        big = little.astype(">f8")
        assert stable_key(little) == stable_key(big)
        assert stable_key(little) == stable_key(np.array([1.5, -2.25, 3.0]))
        ints = np.array([1, 2, 3], dtype="<i4")
        assert stable_key(ints) == stable_key(ints.astype(">i4"))

    def test_byteorder_normalisation_preserves_dtype_distinction(self):
        a = np.array([1, 2], dtype=">i4")
        b = np.array([1, 2], dtype=">i8")
        assert stable_key(a) != stable_key(b)


class TestCrossProcessStability:
    """The regression the cache actually depends on: keys computed in a
    freshly spawned interpreter (new hash salt, new dict seeds, numpy
    re-imported) must equal keys computed here."""

    def test_golden_vectors(self):
        # Frozen digests: these must never change without a
        # CODE_VERSION bump, or on-disk caches silently go stale.
        assert stable_key(None) == (
            "74edfa54f5f0353949a6de0f25f840cd83c3de5da1154cbbcd62982ec71d597e"
        )
        assert stable_key((1, "a", 2.5)) == (
            "070867862ab822fbed5a79ecd3d32570cbbdd48ea279870c045903ab4457d7e5"
        )
        assert stable_key({"b": 2, "a": 1}) == (
            "34fbe8626f5ef94f13e111e5d6f0d7039c32cd775b685811bb803ea351ec6a2a"
        )

    def test_spawned_interpreter_agrees(self):
        value_src = (
            "{'config': [(0.1, 2), (0.2, 3)], 'tags': {'b', 'a'},"
            " 'arr': np.arange(4, dtype='<f8'), 'p': -0.0, 'n': 10**40}"
        )
        import numpy as np  # noqa: F401 - mirrors the subprocess import

        local = stable_key(eval(value_src))
        script = (
            "import numpy as np\n"
            "from repro.engine.hashing import stable_key\n"
            f"print(stable_key({value_src}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == local


class TestDataclasses:
    def test_config_roundtrip(self):
        a = ScenarioConfig(protocol="dap", buffers=4, seed=7)
        b = ScenarioConfig(protocol="dap", buffers=4, seed=7)
        assert stable_key(a) == stable_key(b)

    def test_field_changes_key(self):
        a = ScenarioConfig(protocol="dap", buffers=4, seed=7)
        b = ScenarioConfig(protocol="dap", buffers=4, seed=8)
        assert stable_key(a) != stable_key(b)

    def test_different_classes_never_collide(self):
        # Both are frozen dataclasses; the class qualname is folded in.
        params = paper_parameters(p=0.8, m=4)
        clone = GameParameters(
            ra=params.ra, k1=params.k1, k2=params.k2, p=params.p,
            m=params.m, max_buffers=params.max_buffers,
        )
        assert stable_key(params) == stable_key(clone)
        assert stable_key(params) != stable_key(ScenarioConfig())


class TestRejection:
    def test_unsupported_type_raises(self):
        with pytest.raises(CacheKeyError):
            stable_key(object())

    def test_callable_payload_raises(self):
        with pytest.raises(CacheKeyError):
            stable_key(lambda: None)

    def test_cache_key_error_is_repro_and_type_error(self):
        with pytest.raises(ReproError):
            stable_key(object())
        with pytest.raises(TypeError):
            stable_key(object())


def test_code_version_present():
    assert CODE_VERSION
    # Folding the version changes the key — the staleness guard.
    assert stable_key((CODE_VERSION, 1)) != stable_key(("other-version", 1))
