"""Runner: cache short-circuiting, miss dispatch, ordered reassembly."""

from __future__ import annotations

from repro.engine import (
    ExperimentSpec,
    ResultCache,
    Runner,
    SerialExecutor,
    run_tasks,
)


def double(task: int) -> int:
    return 2 * task


CALLS = []


def recording_double(task: int) -> int:
    CALLS.append(task)
    return 2 * task


class TestWithoutCache:
    def test_runs_everything(self):
        report = Runner().run_report(ExperimentSpec(fn=double, tasks=(1, 2, 3)))
        assert report.results == (2, 4, 6)
        assert report.cache_hits == 0
        assert report.executed == 3

    def test_report_iterates_and_sizes(self):
        report = Runner().run_report(ExperimentSpec(fn=double, tasks=(1, 2)))
        assert list(report) == [2, 4]
        assert len(report) == 2


class TestWithCache:
    def test_second_run_is_all_hits(self):
        cache = ResultCache()
        runner = Runner(cache=cache)
        spec = ExperimentSpec(fn=double, tasks=(1, 2, 3))
        first = runner.run_report(spec)
        second = runner.run_report(spec)
        assert second.results == first.results
        assert second.cache_hits == 3
        assert second.executed == 0

    def test_partial_overlap_computes_only_new_tasks(self):
        CALLS.clear()
        cache = ResultCache()
        runner = Runner(cache=cache)
        runner.run(ExperimentSpec(fn=recording_double, tasks=(1, 2)))
        report = runner.run_report(
            ExperimentSpec(fn=recording_double, tasks=(2, 3, 1))
        )
        assert report.results == (4, 6, 2)
        assert report.cache_hits == 2
        assert report.executed == 1
        assert CALLS == [1, 2, 3]  # 3 computed once, never 1 or 2 again

    def test_cache_is_shared_across_runners(self):
        cache = ResultCache()
        Runner(cache=cache).run(ExperimentSpec(fn=double, tasks=(7,)))
        report = Runner(cache=cache).run_report(
            ExperimentSpec(fn=double, tasks=(7,))
        )
        assert report.cache_hits == 1

    def test_unaddressable_task_degrades_to_compute(self):
        # Payload contains a live object stable_key cannot fold; the
        # runner must compute it every time rather than crash.
        cache = ResultCache()
        runner = Runner(cache=cache)
        spec = ExperimentSpec(fn=len, tasks=([object(), object()],))
        assert runner.run(spec) == [2]
        report = runner.run_report(spec)
        assert report.cache_hits == 0
        assert report.executed == 1


class TestRunTasks:
    def test_front_door(self):
        assert run_tasks(double, [1, 2, 3]) == [2, 4, 6]

    def test_front_door_with_cache_and_executor(self):
        cache = ResultCache()
        first = run_tasks(double, (4, 5), executor=SerialExecutor(), cache=cache)
        second = run_tasks(double, (4, 5), cache=cache)
        assert first == second == [8, 10]
        assert cache.stats.hits == 2
