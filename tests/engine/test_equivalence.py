"""Serial == parallel == cached, bit for bit.

The engine's core guarantee: which executor runs a batch — and which
subset happened to be cached — must never show up in the results. The
simulation layer is the strictest client (float aggregates of hundreds
of packet events), so the equivalence is pinned there.
"""

from __future__ import annotations

import pytest

import repro.sim.experiments as experiments
from repro.engine import ParallelExecutor, ResultCache, SerialExecutor
from repro.errors import TaskError
from repro.sim.experiments import run_config_sweep, run_repeated, run_scenarios
from repro.sim.scenario import ScenarioConfig

CONFIG = ScenarioConfig(
    protocol="dap",
    intervals=15,
    receivers=2,
    buffers=4,
    attack_fraction=0.6,
    announce_copies=5,
)
SEEDS = [11, 12, 13]


class TestRepeated:
    def test_parallel_matches_serial_exactly(self):
        serial = run_repeated(CONFIG, SEEDS, executor=SerialExecutor())
        parallel = run_repeated(CONFIG, SEEDS, executor=ParallelExecutor(jobs=2))
        assert parallel == serial  # full dataclass equality, no tolerance

    def test_cached_replay_matches(self):
        cache = ResultCache()
        first = run_repeated(CONFIG, SEEDS, cache=cache)
        replay = run_repeated(CONFIG, SEEDS, cache=cache)
        assert replay == first
        assert cache.stats.hits == len(SEEDS)

    def test_crashed_seed_is_named(self, monkeypatch):
        real = experiments.run_scenario

        def crash_on_13(config):
            if config.seed == 13:
                raise RuntimeError("reservoir corrupted")
            return real(config)

        monkeypatch.setattr(experiments, "run_scenario", crash_on_13)
        with pytest.raises(TaskError) as excinfo:
            run_repeated(CONFIG, SEEDS)
        assert excinfo.value.label == "seed=13"
        assert "seed=13" in str(excinfo.value)


class TestSweep:
    def test_parallel_matches_serial_exactly(self):
        serial = run_config_sweep(
            CONFIG, "buffers", [2, 4], SEEDS[:2], executor=SerialExecutor()
        )
        parallel = run_config_sweep(
            CONFIG, "buffers", [2, 4], SEEDS[:2],
            executor=ParallelExecutor(jobs=2),
        )
        assert parallel == serial

    def test_sweep_reuses_repeated_results_via_cache(self):
        # The (buffers=4, seed) cells were already computed by
        # run_repeated; the sweep must find them under the same keys.
        cache = ResultCache()
        run_repeated(CONFIG, SEEDS[:2], cache=cache)
        cells = run_config_sweep(CONFIG, "buffers", [2, 4], SEEDS[:2], cache=cache)
        assert cache.stats.hits == 2
        assert [cell.config.buffers for cell in cells] == [2, 4]


class TestScenarios:
    def test_parallel_matches_serial_exactly(self):
        configs = [
            ScenarioConfig(protocol=protocol, intervals=15, receivers=2,
                           buffers=4, attack_fraction=0.6, seed=5)
            for protocol in ("dap", "tesla_pp")
        ]
        serial = run_scenarios(configs, executor=SerialExecutor())
        parallel = run_scenarios(configs, executor=ParallelExecutor(jobs=2))
        assert parallel == serial
