"""Executor contract: ordered results, isolated labelled failures."""

from __future__ import annotations

import pytest

from repro.engine import (
    ExperimentSpec,
    ParallelExecutor,
    SerialExecutor,
    executor_for,
)
from repro.errors import ConfigurationError, TaskError


# Module-level workers so the process pool can pickle them.
def square(task: int) -> int:
    return task * task


def fail_on_three(task: int) -> int:
    if task == 3:
        raise ValueError(f"task {task} exploded")
    return task


class TestSpec:
    def test_empty_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(fn=square, tasks=())

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(fn=square, tasks=(1, 2), task_labels=("only-one",))

    def test_default_task_labels(self):
        spec = ExperimentSpec(fn=square, tasks=(1, 2))
        assert spec.label_for(0) == "task[0]"
        assert spec.label_for(1) == "task[1]"

    def test_over_accepts_any_sequence(self):
        spec = ExperimentSpec.over(square, [1, 2, 3], task_labels=["a", "b", "c"])
        assert len(spec) == 3
        assert spec.label_for(2) == "c"

    def test_cache_keys_distinct_per_task(self):
        spec = ExperimentSpec(fn=square, tasks=(1, 2))
        assert spec.cache_key_for(0) != spec.cache_key_for(1)

    def test_cache_keys_distinct_per_worker(self):
        a = ExperimentSpec(fn=square, tasks=(1,))
        b = ExperimentSpec(fn=fail_on_three, tasks=(1,))
        assert a.cache_key_for(0) != b.cache_key_for(0)


class TestSerial:
    def test_results_in_task_order(self):
        spec = ExperimentSpec(fn=square, tasks=(3, 1, 2))
        assert SerialExecutor().run(spec) == [9, 1, 4]

    def test_failure_carries_task_label_and_index(self):
        spec = ExperimentSpec(
            fn=fail_on_three,
            tasks=(1, 2, 3, 4),
            label="sweep",
            task_labels=("s1", "s2", "s3", "s4"),
        )
        with pytest.raises(TaskError) as excinfo:
            SerialExecutor().run(spec)
        assert excinfo.value.label == "s3"
        assert excinfo.value.index == 2
        assert "sweep" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestParallel:
    def test_matches_serial(self):
        spec = ExperimentSpec(fn=square, tasks=tuple(range(8)))
        assert ParallelExecutor(jobs=2).run(spec) == SerialExecutor().run(spec)

    def test_single_task_shortcut(self):
        spec = ExperimentSpec(fn=square, tasks=(5,))
        assert ParallelExecutor(jobs=4).run(spec) == [25]

    def test_failure_carries_task_label(self):
        spec = ExperimentSpec(
            fn=fail_on_three, tasks=(1, 3), task_labels=("ok", "boom")
        )
        with pytest.raises(TaskError) as excinfo:
            ParallelExecutor(jobs=2).run(spec)
        assert excinfo.value.label == "boom"

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=2, chunksize=0)

    def test_default_jobs_is_cpu_count(self):
        assert ParallelExecutor().jobs >= 1


class TestExecutorFor:
    def test_serial_for_none_zero_one(self):
        for jobs in (None, 0, 1, -3):
            assert isinstance(executor_for(jobs), SerialExecutor)

    def test_parallel_above_one(self):
        executor = executor_for(4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 4
