"""Executor contract: ordered results, isolated labelled failures, and
the warm process-pool lifecycle."""

from __future__ import annotations

import os
import sys

import pytest

from repro.engine import (
    ExperimentSpec,
    ParallelExecutor,
    SerialExecutor,
    executor_for,
)
from repro.errors import ConfigurationError, TaskError


# Module-level workers so the process pool can pickle them.
def square(task: int) -> int:
    return task * task


def fail_on_three(task: int) -> int:
    if task == 3:
        raise ValueError(f"task {task} exploded")
    return task


def worker_pid(task: int) -> int:
    return os.getpid()


class TestSpec:
    def test_empty_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(fn=square, tasks=())

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(fn=square, tasks=(1, 2), task_labels=("only-one",))

    def test_default_task_labels(self):
        spec = ExperimentSpec(fn=square, tasks=(1, 2))
        assert spec.label_for(0) == "task[0]"
        assert spec.label_for(1) == "task[1]"

    def test_over_accepts_any_sequence(self):
        spec = ExperimentSpec.over(square, [1, 2, 3], task_labels=["a", "b", "c"])
        assert len(spec) == 3
        assert spec.label_for(2) == "c"

    def test_cache_keys_distinct_per_task(self):
        spec = ExperimentSpec(fn=square, tasks=(1, 2))
        assert spec.cache_key_for(0) != spec.cache_key_for(1)

    def test_cache_keys_distinct_per_worker(self):
        a = ExperimentSpec(fn=square, tasks=(1,))
        b = ExperimentSpec(fn=fail_on_three, tasks=(1,))
        assert a.cache_key_for(0) != b.cache_key_for(0)


class TestSerial:
    def test_results_in_task_order(self):
        spec = ExperimentSpec(fn=square, tasks=(3, 1, 2))
        assert SerialExecutor().run(spec) == [9, 1, 4]

    def test_failure_carries_task_label_and_index(self):
        spec = ExperimentSpec(
            fn=fail_on_three,
            tasks=(1, 2, 3, 4),
            label="sweep",
            task_labels=("s1", "s2", "s3", "s4"),
        )
        with pytest.raises(TaskError) as excinfo:
            SerialExecutor().run(spec)
        assert excinfo.value.label == "s3"
        assert excinfo.value.index == 2
        assert "sweep" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestParallel:
    def test_matches_serial(self):
        spec = ExperimentSpec(fn=square, tasks=tuple(range(8)))
        with ParallelExecutor(jobs=2) as executor:
            assert executor.run(spec) == SerialExecutor().run(spec)

    def test_single_task_shortcut(self):
        spec = ExperimentSpec(fn=square, tasks=(5,))
        executor = ParallelExecutor(jobs=4)
        assert executor.run(spec) == [25]
        # The shortcut never warms the pool.
        assert executor._pool is None

    def test_failure_carries_task_label(self):
        spec = ExperimentSpec(
            fn=fail_on_three, tasks=(1, 3), task_labels=("ok", "boom")
        )
        with ParallelExecutor(jobs=2) as executor, pytest.raises(
            TaskError
        ) as excinfo:
            executor.run(spec)
        assert excinfo.value.label == "boom"

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=2, chunksize=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=2, maxtasksperchild=0)

    def test_default_jobs_is_cpu_count(self):
        assert ParallelExecutor().jobs >= 1


class TestWarmPool:
    def test_pool_survives_consecutive_runs(self):
        """Two runs share one pool: the worker PIDs overlap and the
        pool object is not rebuilt between calls."""
        spec = ExperimentSpec(fn=worker_pid, tasks=tuple(range(6)))
        with ParallelExecutor(jobs=2) as executor:
            first = set(executor.run(spec))
            pool = executor._pool
            assert pool is not None
            second = set(executor.run(spec))
            assert executor._pool is pool
        assert first & second

    def test_task_error_from_reused_worker(self):
        """A task failure is labelled correctly even on a warm pool, and
        leaves the pool usable for the next run."""
        good = ExperimentSpec(fn=square, tasks=(2, 3))
        bad = ExperimentSpec(
            fn=fail_on_three, tasks=(1, 3), task_labels=("ok", "boom")
        )
        with ParallelExecutor(jobs=2) as executor:
            assert executor.run(good) == [4, 9]
            with pytest.raises(TaskError) as excinfo:
                executor.run(bad)
            assert excinfo.value.label == "boom"
            assert isinstance(excinfo.value.__cause__, ValueError)
            assert executor.run(good) == [4, 9]

    def test_context_manager_shuts_pool_down(self):
        spec = ExperimentSpec(fn=square, tasks=tuple(range(4)))
        with ParallelExecutor(jobs=2) as executor:
            executor.run(spec)
            assert executor._pool is not None
        assert executor._pool is None

    def test_close_is_idempotent_and_allows_reuse(self):
        spec = ExperimentSpec(fn=square, tasks=tuple(range(4)))
        executor = ParallelExecutor(jobs=2)
        executor.close()  # closing a never-warmed pool is a no-op
        assert executor.run(spec) == [0, 1, 4, 9]
        executor.close()
        executor.close()
        # A closed executor warms a fresh pool on the next run.
        assert executor.run(spec) == [0, 1, 4, 9]
        executor.close()

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="stdlib max_tasks_per_child"
    )
    def test_maxtasksperchild_recycles_workers(self):
        spec = ExperimentSpec(fn=worker_pid, tasks=tuple(range(4)))
        with ParallelExecutor(jobs=2, maxtasksperchild=1) as executor:
            pids = executor.run(spec)
        # One task per child: 4 tasks must come from 4 distinct workers.
        assert len(set(pids)) == 4


class TestExecutorFor:
    def test_serial_for_none_zero_one(self):
        for jobs in (None, 0, 1, -3):
            assert isinstance(executor_for(jobs), SerialExecutor)

    def test_parallel_above_one(self):
        executor = executor_for(4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 4
