"""ResultCache: LRU layer, disk layer, statistics."""

from __future__ import annotations

import json

import pytest

from repro.engine import ResultCache
from repro.errors import ConfigurationError


class TestMemoryLayer:
    def test_roundtrip(self):
        cache = ResultCache()
        cache.store("k", {"value": 42})
        hit, value = cache.lookup("k")
        assert hit
        assert value == {"value": 42}

    def test_miss(self):
        hit, value = ResultCache().lookup("absent")
        assert not hit
        assert value is None

    def test_contains_and_len(self):
        cache = ResultCache()
        assert "k" not in cache
        cache.store("k", 1)
        assert "k" in cache
        assert len(cache) == 1

    def test_clear(self):
        cache = ResultCache()
        cache.store("k", 1)
        cache.clear()
        assert len(cache) == 0
        assert not cache.lookup("k")[0]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=0)


class TestLru:
    def test_eviction_past_capacity(self):
        cache = ResultCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("c", 3)
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_lookup_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")  # a is now most recent
        cache.store("c", 3)
        assert "a" in cache
        assert "b" not in cache


class TestStats:
    def test_counters(self):
        cache = ResultCache()
        cache.lookup("k")
        cache.store("k", 1)
        cache.lookup("k")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5

    def test_empty_hit_rate(self):
        assert ResultCache().stats.hit_rate == 0.0


class TestDiskLayer:
    def test_store_writes_json_file(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.store("deadbeef", [1, 2, 3])
        path = tmp_path / "deadbeef.json"
        assert path.exists()
        assert json.loads(path.read_text()) == [1, 2, 3]

    def test_survives_a_new_process_worth_of_cache(self, tmp_path):
        ResultCache(directory=tmp_path).store("k", {"auth": 0.97})
        fresh = ResultCache(directory=tmp_path)
        hit, value = fresh.lookup("k")
        assert hit
        assert value == {"auth": 0.97}
        assert fresh.stats.disk_hits == 1

    def test_clear_keeps_disk(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.store("k", 7)
        cache.clear()
        assert cache.lookup("k") == (True, 7)

    def test_non_json_value_stays_in_memory_only(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.store("k", object())  # not JSON-serialisable
        assert not list(tmp_path.glob("*.json"))
        assert cache.lookup("k")[0]

    def test_corrupt_file_is_a_miss(self, tmp_path):
        (tmp_path / "k.json").write_text("{not json")
        assert not ResultCache(directory=tmp_path).lookup("k")[0]

    def test_encode_decode_hooks(self, tmp_path):
        cache = ResultCache(
            directory=tmp_path,
            encode=lambda pair: list(pair),
            decode=lambda payload: tuple(payload),
        )
        cache.store("k", (0.5, 0.5))
        fresh = ResultCache(
            directory=tmp_path,
            encode=lambda pair: list(pair),
            decode=lambda payload: tuple(payload),
        )
        assert fresh.lookup("k") == (True, (0.5, 0.5))
