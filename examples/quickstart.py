#!/usr/bin/env python3
"""Quickstart: the three layers of the library in ~60 lines.

1. solve the evolutionary game at a given attack level (Algorithm 3),
2. run DAP through the packet-level simulator at that attack level,
3. check the simulation agrees with the game's pricing.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.game import BufferOptimizer, paper_parameters, realized_ess
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    attack_level = 0.8  # fraction of copies the attacker forges

    # ------------------------------------------------------------------
    # 1. The evolutionary game (paper §V): where do attacker and defender
    #    populations settle, and how many buffers should a node dedicate?
    params = paper_parameters(p=attack_level, m=1)
    result = BufferOptimizer(params).optimize()
    row = result.row_for(result.optimal_m)
    print("== Evolutionary game (Ra=200, k1=20, k2=4) ==")
    print(f"attack level p                : {attack_level}")
    print(f"optimal buffers m* (Alg. 3)   : {result.optimal_m}")
    print(f"equilibrium (X, Y)            : ({row.x:.3f}, {row.y:.3f})")
    print(f"equilibrium type              : {row.ess_type.value}")
    print(f"expected defender cost E      : {row.cost:.2f}")

    point, trajectory = realized_ess(params.with_m(result.optimal_m))
    print(
        f"replicator dynamics from (0.5, 0.5) reach {point.ess_type.value}"
        f" in {trajectory.steps} Euler steps (t = 0.01)"
    )

    # ------------------------------------------------------------------
    # 2. The protocol under that attack, end to end (paper §IV): a DAP
    #    sender, a fleet of receivers with m* buffers, and a flooding
    #    attacker, all over a shared broadcast medium.
    scenario = ScenarioConfig(
        protocol="dap",
        intervals=100,
        receivers=5,
        buffers=result.optimal_m,
        attack_fraction=attack_level,
        announce_copies=5,
        seed=7,
    )
    outcome = run_scenario(scenario)
    print("\n== Packet-level simulation (DAP) ==")
    print(f"authentic messages broadcast  : {outcome.sent_authentic}")
    print(f"fleet authentication rate     : {outcome.authentication_rate:.3f}")
    print(f"measured attack success       : {outcome.attack_success_rate:.3f}")
    print(f"forged packets accepted       : {outcome.fleet.total_forged_accepted}")
    print(f"measured forged bandwidth     : {outcome.forged_bandwidth_fraction:.2f}")
    print(f"peak buffer memory (bits)     : {outcome.fleet.peak_buffer_bits}")

    # ------------------------------------------------------------------
    # 3. Model vs measurement: the game prices attacks at P = p^m; the
    #    simulator's finite copy pool makes the exact figure
    #    hypergeometric (it converges to p^m as the pool grows).
    from math import comb

    copies = scenario.announce_copies
    forged = round(copies * attack_level / (1 - attack_level))
    m = result.optimal_m
    exact = comb(forged, m) / comb(forged + copies, m) if forged >= m else 0.0
    print("\n== Agreement ==")
    print(f"analytic attack success p^m   : {attack_level ** m:.4f}")
    print(f"exact (finite pool of {forged + copies:2d})    : {exact:.4f}")
    print(f"simulated attack success      : {outcome.attack_success_rate:.4f}")
    assert outcome.fleet.total_forged_accepted == 0, "security invariant violated"
    print("security invariant holds: no forged packet ever authenticated")


if __name__ == "__main__":
    main()
