#!/usr/bin/env python3
"""Explore the game's phase space: ASCII phase portraits and regime maps.

Reproduces Fig. 6 interactively in the terminal: for any (p, m) it
draws the replicator vector field, the trajectory from (0.5, 0.5) and
the equilibrium it reaches; then sweeps m to print the regime bands.

Run:  python examples/evolution_explorer.py [p] [m]
e.g.  python examples/evolution_explorer.py 0.8 30
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import regime_bands
from repro.game import (
    ReplicatorDynamics,
    fixed_points,
    paper_parameters,
    realized_ess,
)

GRID = 21  # portrait resolution


def ascii_portrait(p: float, m: int) -> None:
    params = paper_parameters(p=p, m=m, max_buffers=100)
    dynamics = ReplicatorDynamics(params)
    point, trajectory = realized_ess(params)

    # Rasterise the trajectory and the fixed points onto the grid; the
    # field samples in one batched derivatives call.
    axis = np.array([j / (GRID - 1) for j in range(GRID)])
    gx, gy = np.meshgrid(axis, axis)
    dxs, dys = dynamics.derivatives_batch(gx, gy)
    cells = [[" "] * GRID for _ in range(GRID)]
    for i in range(GRID):
        for j in range(GRID):
            dx, dy = dxs[i, j], dys[i, j]
            if abs(dx) < 1e-9 and abs(dy) < 1e-9:
                cells[i][j] = "."
            elif abs(dx) > abs(dy):
                cells[i][j] = ">" if dx > 0 else "<"
            else:
                cells[i][j] = "^" if dy > 0 else "v"
    for x, y in zip(trajectory.xs, trajectory.ys):
        j = round(float(x) * (GRID - 1))
        i = round(float(y) * (GRID - 1))
        cells[i][j] = "*"
    fx, fy = trajectory.final
    cells[round(fy * (GRID - 1))][round(fx * (GRID - 1))] = "@"

    label = point.ess_type.value if point else "unclassified"
    print(f"\nphase portrait at p={p}, m={m} — trajectory (*) reaches {label} (@)")
    print("Y=1 " + "-" * GRID)
    for i in range(GRID - 1, -1, -1):
        print("    " + "".join(cells[i]))
    print("Y=0 " + "-" * GRID)
    print("    X=0" + " " * (GRID - 6) + "X=1")

    print("\nrest points:")
    for fp in fixed_points(params):
        marker = "  <- ESS" if fp.is_ess else ""
        print(
            f"  {fp.ess_type.value:<7s} at ({fp.x:.3f}, {fp.y:.3f})"
            f" [{fp.stability.value}]{marker}"
        )


def regime_map(p: float) -> None:
    base = paper_parameters(p=p, m=1, max_buffers=100)
    bands, _ = regime_bands(base, list(range(1, 101, 1)))
    print(f"\nregime bands over m = 1..100 at p = {p}:")
    for band in bands:
        label = band.ess_type.value if band.ess_type else "?"
        print(f"  m in {band.m_min:>3d}..{band.m_max:<3d} -> ESS {label}")


def main() -> None:
    p = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    ascii_portrait(p, m)
    regime_map(p)


if __name__ == "__main__":
    main()
