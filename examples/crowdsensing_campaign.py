#!/usr/bin/env python3
"""A city-scale crowdsensing campaign under DoS attack.

The scenario the paper's introduction motivates: a service provider
broadcasts task messages to a fleet of mobile nodes over a lossy
channel while an attacker floods forged packets to exhaust node
memory. We run the same campaign under every protocol in the family
and report who actually delivers authenticated sensing data.

Run:  python examples/crowdsensing_campaign.py
"""

from __future__ import annotations

from repro.sim import CrowdsensingWorkload, ScenarioConfig, run_scenarios

PROTOCOLS = ("tesla", "mu_tesla", "multilevel", "eftp", "edrp", "tesla_pp", "dap")

CAMPAIGN = dict(
    intervals=60,  # one-minute reporting epochs, an hour-long campaign
    interval_duration=1.0,
    receivers=8,  # participating mobile nodes
    buffers=4,  # each node spares 4 record buffers
    attack_fraction=0.8,  # severe flood: 4 of 5 copies are forged
    loss_probability=0.1,  # low-QoS urban channel
    announce_copies=5,
    sensing_tasks=4,
    seed=2016,
)


def describe_workload() -> None:
    workload = CrowdsensingWorkload(num_tasks=CAMPAIGN["sensing_tasks"], seed=2016)
    print("Sensing tasks in the campaign:")
    for task in workload.tasks:
        print(
            f"  task {task.task_id}: {task.kind:<12s} at"
            f" ({task.x:.2f}, {task.y:.2f})"
        )
    sample = CrowdsensingWorkload.decode_report(workload.report_for(interval=7, copy=1))
    print(
        f"sample report: task {sample.task_id}, epoch {sample.interval},"
        f" reading {sample.reading:.2f} (packed into 200 bits)\n"
    )


def main() -> None:
    describe_workload()
    print(
        f"campaign: {CAMPAIGN['intervals']} epochs, {CAMPAIGN['receivers']} nodes,"
        f" p = {CAMPAIGN['attack_fraction']}, loss = {CAMPAIGN['loss_probability']}\n"
    )
    header = (
        f"{'protocol':<11s} {'auth rate':>9s} {'lost':>9s}"
        f" {'forged acc.':>11s} {'peak mem (b)':>12s}"
    )
    print(header)
    print("-" * len(header))
    # All seven protocols run as one engine batch (pass an executor to
    # run_scenarios to spread them across cores).
    configs = [ScenarioConfig(protocol=protocol, **CAMPAIGN) for protocol in PROTOCOLS]
    results = dict(zip(PROTOCOLS, run_scenarios(configs)))
    for protocol, outcome in results.items():
        lost = 1.0 - outcome.authentication_rate
        print(
            f"{protocol:<11s} {outcome.authentication_rate:>9.3f}"
            f" {lost:>9.3f}"
            f" {outcome.fleet.total_forged_accepted:>11d}"
            f" {outcome.fleet.peak_buffer_bits:>12d}"
        )

    print()
    dap = results["dap"]
    tpp = results["tesla_pp"]
    print(
        f"DAP delivers {dap.authentication_rate:.0%} of reports where TESLA++'s"
        f" keep-first buffering delivers {tpp.authentication_rate:.0%},"
        f" in {dap.fleet.peak_buffer_bits / tpp.fleet.peak_buffer_bits:.0%}"
        f" of the buffer memory."
    )
    assert all(r.fleet.total_forged_accepted == 0 for r in results.values())
    print("integrity: zero forged packets authenticated, in every protocol.")


if __name__ == "__main__":
    main()
