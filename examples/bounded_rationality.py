#!/usr/bin/env python3
"""Bounded rationality in action: imitating agents vs the replicator ODE.

The paper's core modelling assumption (§V-A) is that sensor nodes and
attackers are *not* rational optimisers — they imitate whoever around
them is doing better. This script runs that exact process with finite
agent populations alongside the paper's mean-field ODE, for one buffer
count per Fig. 6 regime, and prints both trajectories side by side.

Run:  python examples/bounded_rationality.py
"""

from __future__ import annotations

import random

from repro.game import (
    PopulationGame,
    ReplicatorDynamics,
    paper_parameters,
    realized_ess,
)

REGIMES = (
    (5, "every node arms, every attacker floods"),
    (14, "full defense, attackers mix"),
    (30, "both sides mix (spiral)"),
    (70, "defense too dear, attackers flood"),
)

CHECKPOINTS = (0, 50, 200, 800, 3000)


def run_regime(m: int, story: str) -> None:
    params = paper_parameters(p=0.8, m=m, max_buffers=100)
    ode_point, ode_traj = realized_ess(params)
    agents = PopulationGame(
        params,
        defenders=500,
        attackers=500,
        imitation_rate=0.3,
        mutation_rate=0.001,
        rng=random.Random(42),
    )
    agent_traj = agents.run(max(CHECKPOINTS), record_every=1)

    # Sample the ODE on a comparable clock: one imitation sweep per node
    # population corresponds to one unit of replicator time at
    # imitation_rate scaling; use the recorded Euler trajectory directly.
    dynamics = ReplicatorDynamics(params)
    print(f"\nm = {m}: {story}")
    print(f"  ODE equilibrium: {ode_point.ess_type.value}"
          f" at ({ode_point.x:.3f}, {ode_point.y:.3f})")
    print(f"  {'round':>6s}  {'agents (X, Y)':>18s}")
    for checkpoint in CHECKPOINTS:
        idx = min(checkpoint, len(agent_traj.xs) - 1)
        print(
            f"  {checkpoint:>6d}  "
            f"({agent_traj.xs[idx]:.3f}, {agent_traj.ys[idx]:.3f})"
        )
    tail = agent_traj.tail_mean()
    err = abs(tail[0] - ode_point.x) + abs(tail[1] - ode_point.y)
    print(f"  agents settle at ({tail[0]:.3f}, {tail[1]:.3f});"
          f" L1 distance to the ODE equilibrium: {err:.3f}")


def main() -> None:
    print(
        "500 defenders and 500 attackers, each round imitating a random\n"
        "peer proportionally to the payoff gap (Ra=200, k1=20, k2=4, p=0.8).\n"
        "No agent knows the game — the population still finds the ESS."
    )
    for m, story in REGIMES:
        run_regime(m, story)


if __name__ == "__main__":
    main()
