#!/usr/bin/env python3
"""A long-lived deployment: chain renewal under flood, end to end.

TESLA-family chains are finite; a crowdsensing service that runs for
months must hand off to fresh chains without re-bootstrapping every
node. This script runs a DAP deployment across several chain epochs
while an attacker floods the channel, and shows:

- handoff messages (next-epoch commitments) surviving the flood through
  DAP's own reservoir defence,
- every epoch authenticated end to end with zero forged acceptances,
- what happens to a victim receiver that misses all handoffs.

Run:  python examples/long_lived_deployment.py
"""

from __future__ import annotations

import random

from repro.protocols import (
    MacAnnouncePacket,
    MessageKeyPacket,
    RenewingDapReceiver,
    RenewingDapSender,
    parse_renewal,
)
from repro.timesync import LooseTimeSync

EPOCH_LENGTH = 12
EPOCHS = 4
ATTACK_P = 0.7
BUFFERS = 6


def main() -> None:
    sender = RenewingDapSender(
        seed=b"city-deployment-2026",
        epoch_length=EPOCH_LENGTH,
        epochs=EPOCHS,
        renewal_lead=3,
        announce_copies=3,
    )
    sync = LooseTimeSync(0.01)
    receiver = RenewingDapReceiver(
        first_commitment=sender.chain(0).commitment,
        epoch_length=EPOCH_LENGTH,
        interval_duration=1.0,
        sync=sync,
        local_key=b"node-17-local-key",
        buffers=BUFFERS,
        rng=random.Random(17),
    )
    # A second receiver that loses every handoff reveal — the failure
    # mode the redundant handoffs protect against.
    victim = RenewingDapReceiver(
        first_commitment=sender.chain(0).commitment,
        epoch_length=EPOCH_LENGTH,
        interval_duration=1.0,
        sync=sync,
        local_key=b"node-99-local-key",
        buffers=BUFFERS,
        rng=random.Random(99),
    )

    rng = random.Random(7)
    forged_per_interval = round(3 * ATTACK_P / (1 - ATTACK_P))
    authenticated_by_epoch = {e: 0 for e in range(EPOCHS)}

    total = sender.total_intervals
    print(
        f"deployment: {EPOCHS} chain epochs x {EPOCH_LENGTH} intervals,"
        f" flood p = {ATTACK_P}, {BUFFERS} buffers/node\n"
    )
    for g in range(1, total + 1):
        now = g - 0.5
        # attacker burst first (worst case for keep-first; harmless here)
        for _ in range(forged_per_interval):
            forged = MacAnnouncePacket(
                g, bytes(rng.getrandbits(8) for _ in range(10)), provenance="forged"
            )
            receiver.receive(forged, now)
            victim.receive(forged, now)
        for packet in sender.packets_for_interval(g):
            for event in receiver.receive(packet, now):
                if event.outcome.value == "authenticated" and event.message:
                    if parse_renewal(event.message) is None:
                        authenticated_by_epoch[(event.index - 1) // EPOCH_LENGTH] += 1
            # the victim never sees handoff reveals
            is_handoff_reveal = isinstance(
                packet, MessageKeyPacket
            ) and parse_renewal(packet.message) is not None
            if not is_handoff_reveal:
                victim.receive(packet, now)

    print("healthy node:")
    print(f"  epochs known        : {receiver.known_epochs}")
    print(f"  renewed via handoff : {sorted(receiver.renewed_epochs)}")
    for epoch, count in authenticated_by_epoch.items():
        print(f"  epoch {epoch}: {count}/{EPOCH_LENGTH} sensing messages authenticated")
    print(f"  forged accepted     : {receiver.stats.forged_accepted}")

    print("\nvictim node (all handoffs lost):")
    print(f"  epochs known        : {victim.known_epochs}")
    print(f"  orphaned epochs     : {sorted(victim.orphaned_epochs)}")
    print(f"  packets undeliverable: {victim.orphaned_packets}")
    print(f"  forged accepted     : {victim.stats.forged_accepted}")

    assert receiver.stats.forged_accepted == 0
    assert victim.stats.forged_accepted == 0
    print(
        "\nhandoffs rode the same DoS-resistant path as data: the flood"
        " could not stop the renewal, and integrity held everywhere."
    )


if __name__ == "__main__":
    main()
