#!/usr/bin/env python3
"""Game-guided adaptive defense against a shifting attacker.

The paper's §V-F mechanism in closed loop: a fleet of DAP nodes
estimates the attack level from what their reservoirs actually caught,
re-runs Algorithm 3 on the estimate, and resizes their buffers —
while the attacker's intensity changes phase by phase. Compare the
cost of this adaptive policy against the naive always-max defense
(Fig. 8's comparison, played out over time).

Run:  python examples/adaptive_defense.py
"""

from __future__ import annotations

from repro.game import (
    AdaptiveDefense,
    AttackEstimator,
    defense_cost,
    naive_defense_cost,
    paper_parameters,
)
from repro.sim import ScenarioConfig, run_scenario

#: (phase name, true attack level, epochs)
PHASES = (
    ("calm", 0.20, 40),
    ("probing", 0.60, 40),
    ("assault", 0.90, 40),
    ("retreat", 0.40, 40),
)


def run_phase(true_p: float, m: int, epochs: int, seed: int):
    """One phase of the campaign at the policy's current buffer size."""
    return run_scenario(
        ScenarioConfig(
            protocol="dap",
            intervals=epochs,
            receivers=4,
            buffers=m,
            attack_fraction=true_p,
            announce_copies=5,
            seed=seed,
        )
    )


def main() -> None:
    base = paper_parameters(p=0.5, m=1)
    estimator = AttackEstimator(alpha=0.35, initial=0.5)
    policy = AdaptiveDefense(base, estimator)

    print("phase      true p   est. p   m*   ESS        auth rate   E(adaptive)   N(naive)")
    print("-" * 86)
    total_adaptive = total_naive = 0.0
    for seed, (name, true_p, epochs) in enumerate(PHASES, start=1):
        m_star = policy.recommended_buffers()
        outcome = run_phase(true_p, m_star, epochs, seed)

        # Nodes feed the estimator what they actually observed at reveal
        # time: how many of their buffered records matched the authentic
        # message. The reservoir keeps a uniform sample of all copies,
        # so 1 - matched/stored is an unbiased sample of the forged
        # fraction.
        for node in outcome.nodes:
            for _interval, stored, matched in node.receiver.observations:
                estimator.observe_interval(stored, matched)

        truth = base.with_p(true_p)
        row = policy.equilibrium()
        adaptive_cost = defense_cost(truth.with_m(m_star), row.x, row.y)
        naive_cost = naive_defense_cost(truth)
        total_adaptive += adaptive_cost * epochs
        total_naive += naive_cost * epochs
        print(
            f"{name:<9s} {true_p:>7.2f} {policy.current_p:>8.2f} {m_star:>4d}"
            f"   {row.ess_type.value if row.ess_type else '?':<9s}"
            f" {outcome.authentication_rate:>9.3f}"
            f" {adaptive_cost:>12.2f} {naive_cost:>10.2f}"
        )
        assert outcome.fleet.total_forged_accepted == 0

    print("-" * 86)
    saved = 1.0 - total_adaptive / total_naive
    print(
        f"campaign cost: adaptive {total_adaptive:,.0f} vs naive"
        f" {total_naive:,.0f}  ({saved:.0%} saved by playing the game)"
    )


if __name__ == "__main__":
    main()
